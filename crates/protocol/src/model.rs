//! The public-process definition language.

use crate::error::{ProtocolError, Result};
use b2b_document::{DocKind, FormatId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A role in a collaboration (buyer/seller in PIP 3A4 terms).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RoleId(String);

impl RoleId {
    /// Wraps a role name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RoleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What one public-process step does.
///
/// The two connection actions implement Section 4.1.1: a `ToBinding` step
/// "passes execution control to a binding … like a parallel branch"; a
/// `FromBinding` step "waits for control from a binding … like a parallel
/// join".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PublicAction {
    /// Receive a business document from the trading partner.
    ReceiveFromPartner {
        /// Expected document kind.
        kind: DocKind,
        /// Variable to store it in.
        var: String,
    },
    /// Send a business document to the trading partner.
    SendToPartner {
        /// Document kind sent.
        kind: DocKind,
        /// Variable holding it.
        var: String,
    },
    /// Connection step: pass a document (and control) to the binding.
    ToBinding {
        /// Variable holding the document to pass.
        var: String,
    },
    /// Connection step: wait for a document (and control) from the binding.
    FromBinding {
        /// Variable the binding's document lands in.
        var: String,
    },
    /// Send a transport-level receipt acknowledgment for the document in
    /// `for_var` (RNIF behaviour, modeled explicitly when a protocol
    /// requires it).
    SendReceipt {
        /// Variable holding the acknowledged document.
        for_var: String,
    },
    /// Wait for a receipt acknowledgment, up to `timeout_ms`.
    WaitReceipt {
        /// Give-up deadline.
        timeout_ms: u64,
    },
}

impl PublicAction {
    /// Partner-facing business traffic, if any: `(direction-is-send, kind)`.
    pub fn partner_traffic(&self) -> Option<(bool, DocKind)> {
        match self {
            Self::SendToPartner { kind, .. } => Some((true, *kind)),
            Self::ReceiveFromPartner { kind, .. } => Some((false, *kind)),
            _ => None,
        }
    }
}

/// One step of a public process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicStepDef {
    /// Step id, unique within the process.
    pub id: String,
    /// Behaviour.
    pub action: PublicAction,
}

/// A public process: the message-exchange behaviour of one role under one
/// B2B protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicProcessDef {
    /// Process id (e.g. `pip3a4:seller`).
    pub id: String,
    /// Wire format of this protocol.
    pub format: FormatId,
    /// Role this process plays.
    pub role: RoleId,
    /// Steps.
    pub steps: Vec<PublicStepDef>,
    /// Control-flow edges (by step id). A linear protocol chains its
    /// steps; RNIF-style protocols fork around receipt handling.
    pub edges: Vec<(String, String)>,
}

impl PublicProcessDef {
    /// Builds a *linear* public process: steps execute in the given order.
    pub fn sequence(
        id: &str,
        format: FormatId,
        role: RoleId,
        steps: Vec<PublicStepDef>,
    ) -> Result<Self> {
        let edges = steps.windows(2).map(|w| (w[0].id.clone(), w[1].id.clone())).collect();
        let def = Self { id: id.to_string(), format, role, steps, edges };
        def.validate()?;
        Ok(def)
    }

    /// Builds a process with explicit edges.
    pub fn graph(
        id: &str,
        format: FormatId,
        role: RoleId,
        steps: Vec<PublicStepDef>,
        edges: Vec<(String, String)>,
    ) -> Result<Self> {
        let def = Self { id: id.to_string(), format, role, steps, edges };
        def.validate()?;
        Ok(def)
    }

    fn invalid(&self, reason: impl Into<String>) -> ProtocolError {
        ProtocolError::InvalidProcess { process: self.id.clone(), reason: reason.into() }
    }

    /// Validates step uniqueness and edge integrity.
    pub fn validate(&self) -> Result<()> {
        if self.steps.is_empty() {
            return Err(self.invalid("no steps"));
        }
        let mut ids = BTreeSet::new();
        for step in &self.steps {
            if !ids.insert(step.id.as_str()) {
                return Err(self.invalid(format!("duplicate step `{}`", step.id)));
            }
        }
        for (from, to) in &self.edges {
            if !ids.contains(from.as_str()) || !ids.contains(to.as_str()) {
                return Err(self.invalid(format!("edge `{from}`->`{to}` references unknown step")));
            }
        }
        Ok(())
    }

    /// The partner-facing traffic of this process in step order:
    /// `(send?, kind)` per business message.
    pub fn traffic(&self) -> Vec<(bool, DocKind)> {
        self.steps.iter().filter_map(|s| s.action.partner_traffic()).collect()
    }

    /// Number of steps (model-size metrics).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Checks that two role processes complement each other: every message
    /// one sends, the other receives, in the same order (Section 3: "for
    /// each message sent by one enterprise there is a receiving step
    /// within the other enterprise").
    pub fn check_complementary(a: &PublicProcessDef, b: &PublicProcessDef) -> Result<()> {
        let ta = a.traffic();
        let tb = b.traffic();
        let err = |reason: String| ProtocolError::NotComplementary {
            a: a.id.clone(),
            b: b.id.clone(),
            reason,
        };
        if ta.len() != tb.len() {
            return Err(err(format!(
                "{} exchanges {} messages, {} exchanges {}",
                a.id,
                ta.len(),
                b.id,
                tb.len()
            )));
        }
        for (i, ((a_send, a_kind), (b_send, b_kind))) in ta.iter().zip(&tb).enumerate() {
            if a_kind != b_kind {
                return Err(err(format!("message {i}: kinds differ ({a_kind} vs {b_kind})")));
            }
            if a_send == b_send {
                let dir = if *a_send { "send" } else { "receive" };
                return Err(err(format!("message {i}: both sides {dir} {a_kind}")));
            }
        }
        Ok(())
    }
}

/// Step-building helpers.
pub mod steps {
    use super::{PublicAction, PublicStepDef};
    use b2b_document::DocKind;

    /// Receive from partner.
    pub fn receive(id: &str, kind: DocKind, var: &str) -> PublicStepDef {
        PublicStepDef {
            id: id.to_string(),
            action: PublicAction::ReceiveFromPartner { kind, var: var.to_string() },
        }
    }

    /// Send to partner.
    pub fn send(id: &str, kind: DocKind, var: &str) -> PublicStepDef {
        PublicStepDef {
            id: id.to_string(),
            action: PublicAction::SendToPartner { kind, var: var.to_string() },
        }
    }

    /// Connection step toward the binding.
    pub fn to_binding(id: &str, var: &str) -> PublicStepDef {
        PublicStepDef {
            id: id.to_string(),
            action: PublicAction::ToBinding { var: var.to_string() },
        }
    }

    /// Connection step from the binding.
    pub fn from_binding(id: &str, var: &str) -> PublicStepDef {
        PublicStepDef {
            id: id.to_string(),
            action: PublicAction::FromBinding { var: var.to_string() },
        }
    }

    /// Explicit receipt acknowledgment.
    pub fn send_receipt(id: &str, for_var: &str) -> PublicStepDef {
        PublicStepDef {
            id: id.to_string(),
            action: PublicAction::SendReceipt { for_var: for_var.to_string() },
        }
    }

    /// Wait for a receipt acknowledgment.
    pub fn wait_receipt(id: &str, timeout_ms: u64) -> PublicStepDef {
        PublicStepDef { id: id.to_string(), action: PublicAction::WaitReceipt { timeout_ms } }
    }
}

#[cfg(test)]
mod tests {
    use super::steps::*;
    use super::*;

    fn seller() -> PublicProcessDef {
        PublicProcessDef::sequence(
            "t:seller",
            FormatId::EDI_X12,
            RoleId::new("seller"),
            vec![
                receive("r", DocKind::PurchaseOrder, "po"),
                to_binding("tb", "po"),
                from_binding("fb", "poa"),
                send("s", DocKind::PurchaseOrderAck, "poa"),
            ],
        )
        .unwrap()
    }

    fn buyer() -> PublicProcessDef {
        PublicProcessDef::sequence(
            "t:buyer",
            FormatId::EDI_X12,
            RoleId::new("buyer"),
            vec![
                from_binding("fb", "po"),
                send("s", DocKind::PurchaseOrder, "po"),
                receive("r", DocKind::PurchaseOrderAck, "poa"),
                to_binding("tb", "poa"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sequence_chains_steps() {
        let p = seller();
        assert_eq!(p.edges.len(), 3);
        assert_eq!(
            p.traffic(),
            vec![(false, DocKind::PurchaseOrder), (true, DocKind::PurchaseOrderAck)]
        );
    }

    #[test]
    fn complementarity_accepts_matching_roles() {
        PublicProcessDef::check_complementary(&buyer(), &seller()).unwrap();
    }

    #[test]
    fn complementarity_rejects_mismatches() {
        // Both sides send: swap seller's receive into a send.
        let mut bad = seller();
        bad.steps[0] = send("r", DocKind::PurchaseOrder, "po");
        assert!(PublicProcessDef::check_complementary(&buyer(), &bad).is_err());
        // Different message count.
        let short = PublicProcessDef::sequence(
            "t:short",
            FormatId::EDI_X12,
            RoleId::new("seller"),
            vec![receive("r", DocKind::PurchaseOrder, "po")],
        )
        .unwrap();
        assert!(PublicProcessDef::check_complementary(&buyer(), &short).is_err());
        // Different kinds.
        let mut wrong_kind = seller();
        wrong_kind.steps[0] = receive("r", DocKind::Invoice, "po");
        assert!(PublicProcessDef::check_complementary(&buyer(), &wrong_kind).is_err());
    }

    #[test]
    fn validation_rejects_broken_definitions() {
        assert!(
            PublicProcessDef::sequence("t", FormatId::EDI_X12, RoleId::new("r"), vec![],).is_err()
        );
        assert!(PublicProcessDef::graph(
            "t",
            FormatId::EDI_X12,
            RoleId::new("r"),
            vec![receive("a", DocKind::PurchaseOrder, "po")],
            vec![("a".into(), "ghost".into())],
        )
        .is_err());
        assert!(PublicProcessDef::sequence(
            "t",
            FormatId::EDI_X12,
            RoleId::new("r"),
            vec![
                receive("a", DocKind::PurchaseOrder, "po"),
                receive("a", DocKind::PurchaseOrder, "po2"),
            ],
        )
        .is_err());
    }
}
