//! Failure notification (RosettaNet PIP 0A1 style).
//!
//! When one side of a running exchange fails permanently — delivery gave
//! up, a deadline passed, a process instance died — it owes the
//! counterparty a *Notification of Failure* so both sides terminate the
//! interaction deterministically instead of one waiting forever.
//! RosettaNet models this as its own tiny PIP (0A1); here it is a single
//! document carried in a transport-level `Notify` envelope by the
//! reliable-messaging layer.

use serde::{Deserialize, Serialize};

/// The business content of a failure notification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureNotice {
    /// Correlation id of the failed interaction (as a string, so the
    /// notice is self-contained on the wire).
    pub correlation: String,
    /// Agreement under which the interaction ran.
    pub agreement_id: String,
    /// Enterprise reporting the failure.
    pub reporter: String,
    /// Human-readable reason.
    pub reason: String,
}

impl FailureNotice {
    /// Builds a notice.
    pub fn new(
        correlation: impl Into<String>,
        agreement_id: impl Into<String>,
        reporter: impl Into<String>,
        reason: impl Into<String>,
    ) -> Self {
        Self {
            correlation: correlation.into(),
            agreement_id: agreement_id.into(),
            reporter: reporter.into(),
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notice_carries_all_routing_fields() {
        let n = FailureNotice::new("corr-1", "edi-TP1-GS", "TP1", "delivery failed");
        assert_eq!(n.correlation, "corr-1");
        assert_eq!(n.agreement_id, "edi-TP1-GS");
        assert_eq!(n.reporter, "TP1");
        assert!(n.reason.contains("delivery"));
    }
}
