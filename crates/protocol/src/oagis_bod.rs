//! OAGIS BOD exchange: PROCESS_PO answered by ACKNOWLEDGE_PO.

use crate::error::Result;
use crate::model::PublicProcessDef;
use crate::patterns::MessageExchangePattern;
use b2b_document::{DocKind, FormatId};

/// Process id prefix.
pub const OAGIS_PO: &str = "oagis-po";

/// The (buyer, seller) public processes of the OAGIS PO exchange.
pub fn oagis_po_processes() -> Result<(PublicProcessDef, PublicProcessDef)> {
    MessageExchangePattern::RequestReply {
        request: DocKind::PurchaseOrder,
        reply: DocKind::PurchaseOrderAck,
    }
    .role_processes(OAGIS_PO, FormatId::OAGIS)
}

/// A one-way OAGIS shipment notice (SYNC_SHIPMENT-style), exercising the
/// one-way pattern with a real format.
pub fn oagis_shipment_notice() -> Result<(PublicProcessDef, PublicProcessDef)> {
    MessageExchangePattern::OneWay { kind: DocKind::ShipmentNotice }
        .role_processes("oagis-asn", FormatId::OAGIS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oagis_processes_complement() {
        let (b, s) = oagis_po_processes().unwrap();
        PublicProcessDef::check_complementary(&b, &s).unwrap();
        assert_eq!(b.format, FormatId::OAGIS);
        let (ib, is) = oagis_shipment_notice().unwrap();
        PublicProcessDef::check_complementary(&ib, &is).unwrap();
        assert_eq!(ib.traffic().len(), 1);
    }
}
