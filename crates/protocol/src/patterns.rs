//! Message-exchange patterns (MEPs).
//!
//! Section 1: the concepts "support the general case of all possible
//! patterns like one-way messages, broadcast messages or multi-step
//! message exchanges". This module generates the two complementary role
//! processes for each pattern — experiment E10 exercises all of them.

use crate::error::Result;
use crate::model::{steps, PublicProcessDef, RoleId};
use b2b_document::{DocKind, FormatId};
use serde::{Deserialize, Serialize};

/// One leg of a multi-step exchange, from the initiator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeLeg {
    /// `true` when the initiator sends this message.
    pub initiator_sends: bool,
    /// Document kind of the leg.
    pub kind: DocKind,
}

/// A message-exchange pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageExchangePattern {
    /// Initiator sends one message; no reply (e.g. a shipment notice).
    OneWay {
        /// Kind sent.
        kind: DocKind,
    },
    /// The PO/POA round trip shape.
    RequestReply {
        /// Request kind.
        request: DocKind,
        /// Reply kind.
        reply: DocKind,
    },
    /// Initiator sends the same message to `recipients` partners (e.g. an
    /// RFQ blast). Each recipient runs the same responder process.
    Broadcast {
        /// Kind sent.
        kind: DocKind,
        /// Number of recipients.
        recipients: usize,
    },
    /// Arbitrary ordered legs.
    MultiStep {
        /// The legs in order.
        legs: Vec<ExchangeLeg>,
    },
}

impl MessageExchangePattern {
    /// The legs of the pattern, normalized.
    pub fn legs(&self) -> Vec<ExchangeLeg> {
        match self {
            Self::OneWay { kind } => vec![ExchangeLeg { initiator_sends: true, kind: *kind }],
            Self::RequestReply { request, reply } => vec![
                ExchangeLeg { initiator_sends: true, kind: *request },
                ExchangeLeg { initiator_sends: false, kind: *reply },
            ],
            Self::Broadcast { kind, .. } => {
                vec![ExchangeLeg { initiator_sends: true, kind: *kind }]
            }
            Self::MultiStep { legs } => legs.clone(),
        }
    }

    /// Short name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::OneWay { .. } => "one-way",
            Self::RequestReply { .. } => "request-reply",
            Self::Broadcast { .. } => "broadcast",
            Self::MultiStep { .. } => "multi-step",
        }
    }

    /// Generates the complementary (initiator, responder) public
    /// processes for this pattern under `format`.
    pub fn role_processes(
        &self,
        id_prefix: &str,
        format: FormatId,
    ) -> Result<(PublicProcessDef, PublicProcessDef)> {
        let legs = self.legs();
        let mut initiator_steps = Vec::new();
        let mut responder_steps = Vec::new();
        for (i, leg) in legs.iter().enumerate() {
            let var = format!("m{i}");
            if leg.initiator_sends {
                // Initiator gets the document from its binding and sends.
                initiator_steps.push(steps::from_binding(&format!("fb{i}"), &var));
                initiator_steps.push(steps::send(&format!("send{i}"), leg.kind, &var));
                responder_steps.push(steps::receive(&format!("recv{i}"), leg.kind, &var));
                responder_steps.push(steps::to_binding(&format!("tb{i}"), &var));
            } else {
                responder_steps.push(steps::from_binding(&format!("fb{i}"), &var));
                responder_steps.push(steps::send(&format!("send{i}"), leg.kind, &var));
                initiator_steps.push(steps::receive(&format!("recv{i}"), leg.kind, &var));
                initiator_steps.push(steps::to_binding(&format!("tb{i}"), &var));
            }
        }
        let initiator = PublicProcessDef::sequence(
            &format!("{id_prefix}:initiator"),
            format.clone(),
            RoleId::new("initiator"),
            initiator_steps,
        )?;
        let responder = PublicProcessDef::sequence(
            &format!("{id_prefix}:responder"),
            format,
            RoleId::new("responder"),
            responder_steps,
        )?;
        PublicProcessDef::check_complementary(&initiator, &responder)?;
        Ok((initiator, responder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_matches_the_po_roundtrip() {
        let mep = MessageExchangePattern::RequestReply {
            request: DocKind::PurchaseOrder,
            reply: DocKind::PurchaseOrderAck,
        };
        let (init, resp) = mep.role_processes("po", FormatId::EDI_X12).unwrap();
        assert_eq!(init.traffic().len(), 2);
        assert_eq!(resp.traffic().len(), 2);
        assert_eq!(init.step_count(), 4);
    }

    #[test]
    fn one_way_has_a_single_leg() {
        let mep = MessageExchangePattern::OneWay { kind: DocKind::ShipmentNotice };
        let (init, resp) = mep.role_processes("asn", FormatId::OAGIS).unwrap();
        assert_eq!(init.traffic(), vec![(true, DocKind::ShipmentNotice)]);
        assert_eq!(resp.traffic(), vec![(false, DocKind::ShipmentNotice)]);
    }

    #[test]
    fn broadcast_reuses_the_one_way_responder_per_recipient() {
        let mep =
            MessageExchangePattern::Broadcast { kind: DocKind::RequestForQuote, recipients: 3 };
        let (_, resp) = mep.role_processes("rfq", FormatId::ROSETTANET).unwrap();
        assert_eq!(resp.traffic(), vec![(false, DocKind::RequestForQuote)]);
        assert_eq!(mep.legs().len(), 1);
    }

    #[test]
    fn multi_step_generates_complementary_sequences() {
        let mep = MessageExchangePattern::MultiStep {
            legs: vec![
                ExchangeLeg { initiator_sends: true, kind: DocKind::RequestForQuote },
                ExchangeLeg { initiator_sends: false, kind: DocKind::Quote },
                ExchangeLeg { initiator_sends: true, kind: DocKind::PurchaseOrder },
                ExchangeLeg { initiator_sends: false, kind: DocKind::PurchaseOrderAck },
                ExchangeLeg { initiator_sends: false, kind: DocKind::Invoice },
            ],
        };
        let (init, resp) = mep.role_processes("procure", FormatId::EDI_X12).unwrap();
        PublicProcessDef::check_complementary(&init, &resp).unwrap();
        assert_eq!(init.traffic().len(), 5);
        assert_eq!(mep.name(), "multi-step");
    }
}
