//! RosettaNet PIP 3A4 with RNIF-style signals.
//!
//! PIP 3A4 "defines the exchange of a *create purchase order* message and
//! a subsequent *purchase order acceptance* message between two
//! organizations. Each organization plays a role, in 3A4 these are buyer
//! and seller" (Section 5.1).
//!
//! Two variants are provided. The plain variant assumes RNIF's reliable
//! transport underneath (acks handled by `b2b-network::reliable`, exactly
//! as the paper describes: "PIPs assume a reliable message exchange layer
//! and this is provided by RNIF"). The explicit variant models receipt
//! acknowledgments *in* the public process — the change-management
//! experiment uses it to show such a change stays local to the public
//! process (Section 4.5).

use crate::error::Result;
use crate::model::{steps, PublicProcessDef, RoleId};
use crate::patterns::MessageExchangePattern;
use b2b_document::{DocKind, FormatId};

/// Process id prefix.
pub const PIP3A4: &str = "pip3a4";
/// Default RNIF time-out for receipt acknowledgments (2 hours in the real
/// spec; scaled down for simulation).
pub const RNIF_RECEIPT_TIMEOUT_MS: u64 = 5_000;

/// The (buyer, seller) processes of PIP 3A4 over reliable RNIF transport.
pub fn pip3a4_processes() -> Result<(PublicProcessDef, PublicProcessDef)> {
    MessageExchangePattern::RequestReply {
        request: DocKind::PurchaseOrder,
        reply: DocKind::PurchaseOrderAck,
    }
    .role_processes(PIP3A4, FormatId::ROSETTANET)
}

/// The same PIP with *explicit* receipt-acknowledgment modelling.
pub fn pip3a4_with_explicit_acks() -> Result<(PublicProcessDef, PublicProcessDef)> {
    let buyer = PublicProcessDef::sequence(
        &format!("{PIP3A4}-acks:buyer"),
        FormatId::ROSETTANET,
        RoleId::new("buyer"),
        vec![
            steps::from_binding("fb0", "m0"),
            steps::send("send0", DocKind::PurchaseOrder, "m0"),
            steps::wait_receipt("wr0", RNIF_RECEIPT_TIMEOUT_MS),
            steps::receive("recv1", DocKind::PurchaseOrderAck, "m1"),
            steps::send_receipt("sr1", "m1"),
            steps::to_binding("tb1", "m1"),
        ],
    )?;
    let seller = PublicProcessDef::sequence(
        &format!("{PIP3A4}-acks:seller"),
        FormatId::ROSETTANET,
        RoleId::new("seller"),
        vec![
            steps::receive("recv0", DocKind::PurchaseOrder, "m0"),
            steps::send_receipt("sr0", "m0"),
            steps::to_binding("tb0", "m0"),
            steps::from_binding("fb1", "m1"),
            steps::send("send1", DocKind::PurchaseOrderAck, "m1"),
            steps::wait_receipt("wr1", RNIF_RECEIPT_TIMEOUT_MS),
        ],
    )?;
    PublicProcessDef::check_complementary(&buyer, &seller)?;
    Ok((buyer, seller))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_pip_is_a_request_reply() {
        let (buyer, seller) = pip3a4_processes().unwrap();
        assert_eq!(buyer.format, FormatId::ROSETTANET);
        assert_eq!(buyer.step_count(), 4);
        PublicProcessDef::check_complementary(&buyer, &seller).unwrap();
    }

    #[test]
    fn explicit_ack_variant_adds_steps_but_same_business_traffic() {
        let (plain_buyer, _) = pip3a4_processes().unwrap();
        let (ack_buyer, ack_seller) = pip3a4_with_explicit_acks().unwrap();
        assert!(ack_buyer.step_count() > plain_buyer.step_count());
        // Business traffic is unchanged — acks are transport signals.
        assert_eq!(ack_buyer.traffic(), plain_buyer.traffic());
        PublicProcessDef::check_complementary(&ack_buyer, &ack_seller).unwrap();
    }
}
