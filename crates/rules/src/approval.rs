//! The paper's `check-need-for-approval` rule family (Section 4.3.2).
//!
//! Thresholds are per (target application, source trading partner). The
//! generated function reproduces the paper's four-rule example and scales
//! to any partner population; the only change when a partner is added is
//! one threshold entry.

use crate::error::Result;
use crate::rule::{BusinessRule, RuleFunction};
use serde::{Deserialize, Serialize};

/// Canonical name of the approval function.
pub const CHECK_NEED_FOR_APPROVAL: &str = "check-need-for-approval";

/// One approval threshold: POs from `source` to `target` at or above
/// `threshold_units` (whole currency units) need approval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApprovalThreshold {
    /// Target back-end application name (e.g. `SAP`).
    pub target: String,
    /// Source trading partner name (e.g. `TP1`).
    pub source: String,
    /// Amount (whole units) at or above which approval is required.
    pub threshold_units: i64,
}

impl ApprovalThreshold {
    /// Builds a threshold entry.
    pub fn new(target: &str, source: &str, threshold_units: i64) -> Self {
        Self { target: target.to_string(), source: source.to_string(), threshold_units }
    }

    fn to_rule(&self, index: usize) -> Result<BusinessRule> {
        BusinessRule::parse(
            &format!("business rule {}", index + 1),
            &format!("target == \"{}\" and source == \"{}\"", self.target, self.source),
            &format!("document.amount >= {}", self.threshold_units),
        )
    }
}

/// Builds the `check-need-for-approval` function from threshold entries.
pub fn check_need_for_approval(thresholds: &[ApprovalThreshold]) -> Result<RuleFunction> {
    let mut f = RuleFunction::new(CHECK_NEED_FOR_APPROVAL);
    for (i, t) in thresholds.iter().enumerate() {
        f.add_rule(t.to_rule(i)?);
    }
    Ok(f)
}

/// The paper's initial population: TP1 and TP2 against SAP and Oracle.
pub fn paper_thresholds() -> Vec<ApprovalThreshold> {
    vec![
        ApprovalThreshold::new("SAP", "TP1", 55_000),
        ApprovalThreshold::new("SAP", "TP2", 40_000),
        ApprovalThreshold::new("Oracle", "TP1", 55_000),
        ApprovalThreshold::new("Oracle", "TP2", 40_000),
    ]
}

/// Adds one rule for a new partner to an existing function — the paper's
/// Figure 15 change ("the only change … is the business rule that has to
/// provide the logic for one more trading partner").
pub fn add_partner(
    function: &mut RuleFunction,
    target: &str,
    source: &str,
    threshold_units: i64,
) -> Result<()> {
    let index = function.rules.len();
    function.add_rule(ApprovalThreshold::new(target, source, threshold_units).to_rule(index)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::RuleContext;
    use b2b_document::normalized::sample_po;
    use b2b_document::Value;

    #[test]
    fn reproduces_the_papers_four_rules() {
        let f = check_need_for_approval(&paper_thresholds()).unwrap();
        assert_eq!(f.rules.len(), 4);
        let doc = sample_po("1", 45_000);
        let cases = [
            ("TP1", "SAP", false),
            ("TP2", "SAP", true),
            ("TP1", "Oracle", false),
            ("TP2", "Oracle", true),
        ];
        for (source, target, expected) in cases {
            assert_eq!(
                f.invoke(&RuleContext::new(source, target, &doc)).unwrap(),
                Value::Bool(expected),
                "{source}->{target}"
            );
        }
    }

    #[test]
    fn boundary_is_inclusive() {
        let f = check_need_for_approval(&paper_thresholds()).unwrap();
        let exactly = sample_po("1", 55_000);
        assert_eq!(f.invoke(&RuleContext::new("TP1", "SAP", &exactly)).unwrap(), Value::Bool(true));
        let below = sample_po("1", 54_999);
        assert_eq!(f.invoke(&RuleContext::new("TP1", "SAP", &below)).unwrap(), Value::Bool(false));
    }

    #[test]
    fn unknown_partner_hits_error_case() {
        let f = check_need_for_approval(&paper_thresholds()).unwrap();
        let doc = sample_po("1", 45_000);
        assert!(f.invoke(&RuleContext::new("TP3", "SAP", &doc)).is_err());
    }

    #[test]
    fn add_partner_extends_without_touching_existing_rules() {
        let mut f = check_need_for_approval(&paper_thresholds()).unwrap();
        let before: Vec<String> = f.rules.iter().map(|r| r.name.clone()).collect();
        add_partner(&mut f, "SAP", "TP3", 10_000).unwrap();
        add_partner(&mut f, "Oracle", "TP3", 10_000).unwrap();
        assert_eq!(f.rules.len(), 6);
        let after: Vec<String> = f.rules[..4].iter().map(|r| r.name.clone()).collect();
        assert_eq!(before, after, "existing rules untouched");
        let doc = sample_po("1", 12_000);
        assert_eq!(f.invoke(&RuleContext::new("TP3", "SAP", &doc)).unwrap(), Value::Bool(true));
    }
}
