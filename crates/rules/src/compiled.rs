//! Compiled rule programs: flat instruction streams for the decision layer.
//!
//! The tree interpreter in [`expr::eval`](crate::expr::eval) clones a
//! [`Value`] per AST node it touches — every `document.amount` lookup
//! copies the amount, every literal copies itself. This module lowers an
//! [`Expr`] once into a postorder instruction program that evaluates on a
//! reusable operand stack of *borrowed* values: path lookups push
//! references into the document body, `source`/`target` push string
//! slices, and only genuinely new values (comparison results, arithmetic,
//! parsed dates) are materialized. Field names are pre-resolved to
//! process-global interned [`Symbol`]s (the same symbols that key every
//! record), literal-only subtrees are constant-folded at compile
//! time — including subtrees that always *fail*, which lower to an
//! in-place [`Op::Fail`] so error order is preserved — and `and`/`or`
//! short-circuit via skip offsets patched into the stream.
//!
//! The contract with the interpreter is strict observational equality:
//! byte-identical outputs *and* byte-identical error values, fuzzed by the
//! compiled-vs-interpreted proptest in `tests/properties.rs`.

use crate::error::{Result, RuleError};
use crate::expr::eval;
use crate::expr::{BinOp, Builtin, Expr, PathRoot, RuleContext};
use crate::rule::RuleFunction;
use b2b_document::{
    CorrelationId, Date, DocKind, Document, DocumentError, FieldPath, FormatId, Money, PathSeg,
    Symbol, Value,
};
use std::cmp::Ordering;

fn eval_err(reason: impl Into<String>) -> RuleError {
    RuleError::Eval { reason: reason.into() }
}

/// One step of a pre-resolved path.
#[derive(Debug, Clone, PartialEq)]
enum CSeg {
    /// Record field access through an interned name.
    Field(Symbol),
    /// List element access.
    Index(usize),
}

/// A slice of [`CSeg`]s in the shared segment pool, plus the pooled
/// `PathNotFound` reason reported when the path misses.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PathInfo {
    start: u32,
    len: u32,
    miss: u32,
}

/// A leaf operand a comparison can evaluate in place, without stack
/// traffic: the fusible subset of expressions (constants — including
/// folded constant subtrees like `date("…")` —, `source`, `target`,
/// document paths, and `len(document.path)`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Atom {
    /// A pooled constant.
    Const(u32),
    /// The context's `source`.
    Source,
    /// The context's `target`.
    Target,
    /// A document-rooted path.
    Path(u32),
    /// `len()` of a document-rooted path.
    LenPath(u32),
}

/// One instruction. Operands live on the evaluation stack; indices point
/// into the program's constant / string / path pools.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Push a reference to a pooled constant.
    Const(u32),
    /// Push the context's `source` as a borrowed string.
    Source,
    /// Push the context's `target` as a borrowed string.
    Target,
    /// Resolve a document-rooted path; push a reference into the body, or
    /// fail with the pooled `PathNotFound` reason.
    Path(u32),
    /// Fail unconditionally with a pooled reason — a constant-folded
    /// subtree whose evaluation always errors (kept in place so error
    /// order matches the interpreter).
    Fail(u32),
    /// Logical negation of a bool.
    Not,
    /// Arithmetic negation of an int or money.
    Neg,
    /// Pop two operands, compare, push the bool result.
    Cmp(BinOp),
    /// Fused comparison of two in-place atoms: no pushes, no pops, one
    /// dispatch. This is the superinstruction the guard scans of real rule
    /// functions (`target == "…" and source == "…" and …`) compile into.
    /// Atom evaluation order (left before right) and every error text
    /// match the unfused `[lhs, rhs, Cmp]` sequence exactly.
    Cmp2 { op: BinOp, l: Atom, r: Atom },
    /// A non-final link of a fused `and` chain: evaluate the comparison in
    /// place; if false, push `false` and skip past the chain's end; if
    /// true, fall through to the next link with *no* stack traffic at all.
    /// Equivalent to `[Cmp2, AndCheck]`, collapsed into one dispatch.
    Cmp2AndCheck { op: BinOp, l: Atom, r: Atom, skip: u32 },
    /// A non-final link of a fused `or` chain (mirror of
    /// [`Op::Cmp2AndCheck`]): if true, push `true` and skip; if false,
    /// fall through.
    Cmp2OrCheck { op: BinOp, l: Atom, r: Atom, skip: u32 },
    /// Pop two operands, combine arithmetically, push the result.
    Arith(BinOp),
    /// `and` short-circuit: pop the lhs; if false, push `false` and skip
    /// the next `n` instructions (the rhs and its tail).
    AndCheck(u32),
    /// `and` tail: pop the rhs, coerce to bool, push.
    AndTail,
    /// `or` short-circuit: pop the lhs; if true, push `true` and skip.
    OrCheck(u32),
    /// `or` tail: pop the rhs, coerce to bool, push.
    OrTail,
    /// `date(text)` builtin.
    DateCall,
    /// `money(text)` builtin.
    MoneyCall,
    /// `len(list | text)` builtin.
    Len,
    /// `exists(document.path)` — resolve without failing, push the bool.
    ExistsPath(u32),
}

/// A stack operand: borrowed wherever possible, owned only for values the
/// program genuinely creates.
#[derive(Debug)]
enum Operand<'v> {
    /// A value the program computed (comparison result, arithmetic, …).
    Owned(Value),
    /// A borrow into the document body or the constant pool.
    Ref(&'v Value),
    /// `source` / `target` — a string slice that never became a `Value`.
    Str(&'v str),
}

/// A borrowed view used for type dispatch without consuming the operand.
enum View<'a> {
    Val(&'a Value),
    Str(&'a str),
}

/// A resolved fused atom: a borrow into the document body or constant
/// pool, a context string, or a computed length. Never an owned `Value` —
/// fused comparisons move nothing.
enum AtomVal<'v> {
    Val(&'v Value),
    Str(&'v str),
    Int(i64),
}

impl<'v> Operand<'v> {
    fn view(&self) -> View<'_> {
        match self {
            Operand::Owned(v) => View::Val(v),
            Operand::Ref(v) => View::Val(v),
            Operand::Str(s) => View::Str(s),
        }
    }

    /// The type name the interpreter would report for this operand.
    fn type_name(&self) -> &'static str {
        match self.view() {
            View::Val(v) => v.type_name(),
            View::Str(_) => "text",
        }
    }

    /// Materializes the operand (the only clone on the whole path, paid
    /// once for the final result or a stored value).
    fn into_value(self) -> Value {
        match self {
            Operand::Owned(v) => v,
            Operand::Ref(v) => v.clone(),
            Operand::Str(s) => Value::text(s),
        }
    }

    /// Boolean coercion with the interpreter's exact error text.
    fn as_bool(&self, at: &str) -> Result<bool> {
        match self.view() {
            View::Val(Value::Bool(b)) => Ok(*b),
            _ => Err(eval_err(
                DocumentError::TypeMismatch {
                    expected: "bool",
                    found: self.type_name(),
                    at: at.to_string(),
                }
                .to_string(),
            )),
        }
    }

    /// Text coercion with the interpreter's exact error text.
    fn as_text(&self, at: &str) -> Result<&str> {
        match self.view() {
            View::Val(Value::Text(s)) => Ok(s),
            View::Str(s) => Ok(s),
            _ => Err(eval_err(
                DocumentError::TypeMismatch {
                    expected: "text",
                    found: self.type_name(),
                    at: at.to_string(),
                }
                .to_string(),
            )),
        }
    }
}

/// Compares two operands with the interpreter's coercion table.
/// `source`/`target` slices compare as text without materializing.
fn compare_operands(l: &Operand<'_>, r: &Operand<'_>) -> Result<Ordering> {
    match (l.view(), r.view()) {
        (View::Val(a), View::Val(b)) => eval::compare(a, b),
        (View::Str(a), View::Str(b)) => Ok(a.cmp(b)),
        (View::Str(a), View::Val(Value::Text(b))) => Ok(a.cmp(b.as_str())),
        (View::Val(Value::Text(a)), View::Str(b)) => Ok(a.as_str().cmp(b)),
        (View::Str(_), View::Val(b)) => {
            Err(eval_err(format!("cannot compare text with {}", b.type_name())))
        }
        (View::Val(a), View::Str(_)) => {
            Err(eval_err(format!("cannot compare {} with text", a.type_name())))
        }
    }
}

/// Maps a comparison operator over an ordering — the interpreter's exact
/// truth table, shared by every (fused or not) comparison instruction.
fn cmp_result(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("comparison arm"),
    }
}

/// Arithmetic over operands, mirroring the interpreter's defined cases.
fn arith_operands(op: BinOp, l: &Operand<'_>, r: &Operand<'_>) -> Result<Value> {
    let overflow = || eval_err("integer overflow");
    match (op, l.view(), r.view()) {
        (BinOp::Add, View::Val(Value::Int(a)), View::Val(Value::Int(b))) => {
            Ok(Value::Int(a.checked_add(*b).ok_or_else(overflow)?))
        }
        (BinOp::Sub, View::Val(Value::Int(a)), View::Val(Value::Int(b))) => {
            Ok(Value::Int(a.checked_sub(*b).ok_or_else(overflow)?))
        }
        (BinOp::Mul, View::Val(Value::Int(a)), View::Val(Value::Int(b))) => {
            Ok(Value::Int(a.checked_mul(*b).ok_or_else(overflow)?))
        }
        (BinOp::Add, View::Val(Value::Money(a)), View::Val(Value::Money(b))) => {
            Ok(Value::Money(a.checked_add(*b).map_err(|e| eval_err(e.to_string()))?))
        }
        (BinOp::Sub, View::Val(Value::Money(a)), View::Val(Value::Money(b))) => {
            Ok(Value::Money(a.checked_sub(*b).map_err(|e| eval_err(e.to_string()))?))
        }
        (BinOp::Mul, View::Val(Value::Money(a)), View::Val(Value::Int(b)))
        | (BinOp::Mul, View::Val(Value::Int(b)), View::Val(Value::Money(a))) => {
            Ok(Value::Money(a.checked_mul(*b).map_err(|e| eval_err(e.to_string()))?))
        }
        _ => Err(eval_err(format!(
            "{op:?} is not defined for {} and {}",
            l.type_name(),
            r.type_name()
        ))),
    }
}

/// One expression lowered to a flat program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    ops: Vec<Op>,
    consts: Vec<Value>,
    strings: Vec<Box<str>>,
    segs: Vec<CSeg>,
    paths: Vec<PathInfo>,
    max_stack: usize,
}

impl CompiledExpr {
    /// Lowers an expression.
    pub fn compile(expr: &Expr) -> Self {
        let mut c = Compiler::default();
        // The folding context is never consulted: `is_const` admits only
        // subtrees whose value is independent of (source, target, document).
        let dummy_doc = Document::new(
            DocKind::Receipt,
            FormatId::custom("rule-fold"),
            CorrelationId::new("fold"),
            Value::record(),
        );
        let dummy = RuleContext::new("", "", &dummy_doc);
        c.emit(expr, &dummy);
        CompiledExpr {
            ops: c.ops,
            consts: c.consts,
            strings: c.strings,
            segs: c.segs,
            paths: c.paths,
            max_stack: c.max_depth,
        }
    }

    /// Number of instructions (constant folding shrinks this).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Deepest operand stack any evaluation of this program can reach.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    fn walk<'v>(&self, info: PathInfo, root: &'v Value) -> Option<&'v Value> {
        let mut cur = root;
        let segs = &self.segs[info.start as usize..(info.start + info.len) as usize];
        for seg in segs {
            cur = match (seg, cur) {
                (CSeg::Field(sym), Value::Record(fields)) => fields.get_sym(*sym)?,
                (CSeg::Index(i), Value::List(items)) => items.get(*i)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    fn fail(&self, reason: u32) -> RuleError {
        eval_err(self.strings[reason as usize].to_string())
    }

    /// Evaluates one fused atom, borrowing wherever possible — no operand
    /// is materialized, no `Value` is moved. Failures (and failure texts)
    /// match the unfused instruction sequence exactly.
    fn atom_val<'v>(&'v self, atom: Atom, ctx: &RuleContext<'v>) -> Result<AtomVal<'v>> {
        Ok(match atom {
            Atom::Const(i) => AtomVal::Val(&self.consts[i as usize]),
            Atom::Source => AtomVal::Str(ctx.source),
            Atom::Target => AtomVal::Str(ctx.target),
            Atom::Path(i) => {
                let info = self.paths[i as usize];
                match self.walk(info, ctx.document.body()) {
                    Some(v) => AtomVal::Val(v),
                    None => return Err(self.fail(info.miss)),
                }
            }
            Atom::LenPath(i) => {
                let info = self.paths[i as usize];
                let v = match self.walk(info, ctx.document.body()) {
                    Some(v) => v,
                    None => return Err(self.fail(info.miss)),
                };
                let n = match v {
                    Value::List(items) => items.len() as i64,
                    Value::Text(s) => s.chars().count() as i64,
                    _ => {
                        return Err(eval_err(format!(
                            "len() needs list or text, got {}",
                            v.type_name()
                        )))
                    }
                };
                AtomVal::Int(n)
            }
        })
    }

    /// A fused comparison, start to finish: resolve both atoms (left
    /// first), compare with the interpreter's coercion table, map through
    /// the operator. Error texts are byte-identical to the stacked
    /// `[lhs, rhs, Cmp]` sequence.
    fn cmp2(&self, op: BinOp, l: Atom, r: Atom, ctx: &RuleContext<'_>) -> Result<bool> {
        let lv = self.atom_val(l, ctx)?;
        let rv = self.atom_val(r, ctx)?;
        let ord = match (&lv, &rv) {
            (AtomVal::Val(a), AtomVal::Val(b)) => eval::compare(a, b)?,
            (AtomVal::Str(a), AtomVal::Str(b)) => a.cmp(b),
            (AtomVal::Str(a), AtomVal::Val(Value::Text(b))) => a.cmp(&b.as_str()),
            (AtomVal::Val(Value::Text(a)), AtomVal::Str(b)) => a.as_str().cmp(b),
            (AtomVal::Int(a), AtomVal::Int(b)) => a.cmp(b),
            (AtomVal::Int(a), AtomVal::Val(b)) => eval::compare(&Value::Int(*a), b)?,
            (AtomVal::Val(a), AtomVal::Int(b)) => eval::compare(a, &Value::Int(*b))?,
            (AtomVal::Str(_), AtomVal::Val(b)) => {
                return Err(eval_err(format!("cannot compare text with {}", b.type_name())))
            }
            (AtomVal::Val(a), AtomVal::Str(_)) => {
                return Err(eval_err(format!("cannot compare {} with text", a.type_name())))
            }
            (AtomVal::Str(_), AtomVal::Int(_)) => {
                return Err(eval_err("cannot compare text with int".to_string()))
            }
            (AtomVal::Int(_), AtomVal::Str(_)) => {
                return Err(eval_err("cannot compare int with text".to_string()))
            }
        };
        Ok(cmp_result(op, ord))
    }

    /// Runs the program. `stack` is caller-provided so one allocation
    /// serves every guard and body of a whole function invocation.
    fn run<'v>(
        &'v self,
        ctx: &RuleContext<'v>,
        stack: &mut Vec<Operand<'v>>,
    ) -> Result<Operand<'v>> {
        stack.clear();
        let mut pc = 0;
        while pc < self.ops.len() {
            match self.ops[pc] {
                Op::Const(i) => stack.push(Operand::Ref(&self.consts[i as usize])),
                Op::Source => stack.push(Operand::Str(ctx.source)),
                Op::Target => stack.push(Operand::Str(ctx.target)),
                Op::Path(i) => {
                    let info = self.paths[i as usize];
                    match self.walk(info, ctx.document.body()) {
                        Some(v) => stack.push(Operand::Ref(v)),
                        None => return Err(self.fail(info.miss)),
                    }
                }
                Op::Fail(i) => return Err(self.fail(i)),
                Op::Not => {
                    let v = pop(stack);
                    match v.view() {
                        View::Val(Value::Bool(b)) => stack.push(Operand::Owned(Value::Bool(!b))),
                        _ => {
                            return Err(eval_err(format!(
                                "`not` needs a bool, got {}",
                                v.type_name()
                            )))
                        }
                    }
                }
                Op::Neg => {
                    let v = pop(stack);
                    let negated = match v.view() {
                        View::Val(Value::Int(n)) => Value::Int(
                            n.checked_neg().ok_or_else(|| eval_err("integer negation overflow"))?,
                        ),
                        View::Val(Value::Money(m)) => {
                            Value::Money(m.checked_mul(-1).map_err(|e| eval_err(e.to_string()))?)
                        }
                        _ => {
                            return Err(eval_err(format!(
                                "`-` needs int or money, got {}",
                                v.type_name()
                            )))
                        }
                    };
                    stack.push(Operand::Owned(negated));
                }
                Op::Cmp(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    let ord = compare_operands(&l, &r)?;
                    stack.push(Operand::Owned(Value::Bool(cmp_result(op, ord))));
                }
                Op::Cmp2 { op, l, r } => {
                    let result = self.cmp2(op, l, r, ctx)?;
                    stack.push(Operand::Owned(Value::Bool(result)));
                }
                Op::Cmp2AndCheck { op, l, r, skip } => {
                    if !self.cmp2(op, l, r, ctx)? {
                        stack.push(Operand::Owned(Value::Bool(false)));
                        pc += skip as usize;
                    }
                }
                Op::Cmp2OrCheck { op, l, r, skip } => {
                    if self.cmp2(op, l, r, ctx)? {
                        stack.push(Operand::Owned(Value::Bool(true)));
                        pc += skip as usize;
                    }
                }
                Op::Arith(op) => {
                    let r = pop(stack);
                    let l = pop(stack);
                    stack.push(Operand::Owned(arith_operands(op, &l, &r)?));
                }
                Op::AndCheck(skip) => {
                    if !pop(stack).as_bool("and")? {
                        stack.push(Operand::Owned(Value::Bool(false)));
                        pc += skip as usize;
                    }
                }
                Op::AndTail => {
                    let r = pop(stack).as_bool("and")?;
                    stack.push(Operand::Owned(Value::Bool(r)));
                }
                Op::OrCheck(skip) => {
                    if pop(stack).as_bool("or")? {
                        stack.push(Operand::Owned(Value::Bool(true)));
                        pc += skip as usize;
                    }
                }
                Op::OrTail => {
                    let r = pop(stack).as_bool("or")?;
                    stack.push(Operand::Owned(Value::Bool(r)));
                }
                Op::DateCall => {
                    let v = pop(stack);
                    let text = v.as_text("date()")?;
                    let date = Date::parse_iso(text).map_err(|e| eval_err(e.to_string()))?;
                    stack.push(Operand::Owned(Value::Date(date)));
                }
                Op::MoneyCall => {
                    let v = pop(stack);
                    let text = v.as_text("money()")?;
                    let money = Money::parse(text).map_err(|e| eval_err(e.to_string()))?;
                    stack.push(Operand::Owned(Value::Money(money)));
                }
                Op::Len => {
                    let v = pop(stack);
                    let n = match v.view() {
                        View::Val(Value::List(items)) => items.len() as i64,
                        View::Val(Value::Text(s)) => s.chars().count() as i64,
                        View::Str(s) => s.chars().count() as i64,
                        _ => {
                            return Err(eval_err(format!(
                                "len() needs list or text, got {}",
                                v.type_name()
                            )))
                        }
                    };
                    stack.push(Operand::Owned(Value::Int(n)));
                }
                Op::ExistsPath(i) => {
                    let info = self.paths[i as usize];
                    let present = self.walk(info, ctx.document.body()).is_some();
                    stack.push(Operand::Owned(Value::Bool(present)));
                }
            }
            pc += 1;
        }
        Ok(pop(stack))
    }
}

fn pop<'v>(stack: &mut Vec<Operand<'v>>) -> Operand<'v> {
    stack.pop().expect("compiled rule program underflowed its operand stack")
}

/// Whether an expression's value is independent of the evaluation context
/// (and therefore foldable at compile time). `exists()` never evaluates
/// its argument: its result depends on the argument's *shape* unless the
/// path is document-rooted.
fn is_const(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(_) => true,
        Expr::Path { .. } => false,
        Expr::Not(e) | Expr::Neg(e) => is_const(e),
        Expr::Binary { lhs, rhs, .. } => is_const(lhs) && is_const(rhs),
        Expr::Call { builtin: Builtin::Exists, arg } => {
            !matches!(&**arg, Expr::Path { root: PathRoot::Document, .. })
        }
        Expr::Call { arg, .. } => is_const(arg),
    }
}

/// Flattens nested `chain_op` nodes into their leaf terms, in evaluation
/// order. Both `(a and b) and c` and `a and (b and c)` yield `[a, b, c]`.
fn flatten_chain<'e>(expr: &'e Expr, chain_op: BinOp, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary { op, lhs, rhs } if *op == chain_op => {
            flatten_chain(lhs, chain_op, out);
            flatten_chain(rhs, chain_op, out);
        }
        _ => out.push(expr),
    }
}

/// Whether an expression is a comparison whose both sides will atomize —
/// the non-mutating twin of [`Compiler::atom_of`], used to decide chain
/// fusion before committing anything to the pools.
fn fusible_cmp(expr: &Expr, dummy: &RuleContext<'_>) -> bool {
    match expr {
        Expr::Binary { op, lhs, rhs }
            if !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::And | BinOp::Or) =>
        {
            atomizable(lhs, dummy) && atomizable(rhs, dummy)
        }
        _ => false,
    }
}

/// Whether [`Compiler::atom_of`] will return `Some` for this expression.
fn atomizable(expr: &Expr, dummy: &RuleContext<'_>) -> bool {
    if is_const(expr) {
        // Constant subtrees that fold to an error stay unfused so their
        // in-place `Fail` keeps its position.
        return eval::eval(expr, dummy).is_ok();
    }
    match expr {
        Expr::Path { root: PathRoot::Document, .. } => true,
        Expr::Path { root: PathRoot::Source | PathRoot::Target, path } => {
            path.segments().is_empty()
        }
        Expr::Call { builtin: Builtin::Len, arg } => {
            matches!(&**arg, Expr::Path { root: PathRoot::Document, .. })
        }
        _ => false,
    }
}

#[derive(Default)]
struct Compiler {
    ops: Vec<Op>,
    consts: Vec<Value>,
    strings: Vec<Box<str>>,
    segs: Vec<CSeg>,
    paths: Vec<PathInfo>,
    depth: usize,
    max_depth: usize,
}

impl Compiler {
    /// Emits ops for `expr`, tracking the operand-stack depth so the
    /// runtime can pre-size its stack. Every expression nets +1 depth.
    fn emit(&mut self, expr: &Expr, dummy: &RuleContext<'_>) {
        if is_const(expr) {
            match eval::eval(expr, dummy) {
                Ok(v) => {
                    let i = self.push_const(v);
                    self.ops.push(Op::Const(i));
                    self.produced();
                    return;
                }
                Err(RuleError::Eval { reason }) => {
                    let i = self.push_string(reason);
                    self.ops.push(Op::Fail(i));
                    self.produced();
                    return;
                }
                // Defensive: `eval` only raises `Eval` errors today; fall
                // through to normal emission if that ever changes.
                Err(_) => {}
            }
        }
        match expr {
            Expr::Literal(v) => {
                let i = self.push_const(v.clone());
                self.ops.push(Op::Const(i));
                self.produced();
            }
            Expr::Path { root, path } => self.emit_path(*root, path),
            Expr::Not(e) => {
                self.emit(e, dummy);
                self.ops.push(Op::Not);
            }
            Expr::Neg(e) => {
                self.emit(e, dummy);
                self.ops.push(Op::Neg);
            }
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                if !self.try_emit_cmp_chain(expr, BinOp::And, dummy) {
                    self.emit_logical(lhs, rhs, dummy, Op::AndCheck(0), Op::AndTail)
                }
            }
            Expr::Binary { op: BinOp::Or, lhs, rhs } => {
                if !self.try_emit_cmp_chain(expr, BinOp::Or, dummy) {
                    self.emit_logical(lhs, rhs, dummy, Op::OrCheck(0), Op::OrTail)
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let compare = !matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul);
                // Fuse `atom <cmp> atom` into one stack-free instruction.
                // (Both sides constant never reaches here — the whole
                // comparison would have folded above.)
                if compare {
                    if let (Some(l), Some(r)) = (self.atom_of(lhs, dummy), self.atom_of(rhs, dummy))
                    {
                        self.ops.push(Op::Cmp2 { op: *op, l, r });
                        self.produced();
                        return;
                    }
                }
                self.emit(lhs, dummy);
                self.emit(rhs, dummy);
                self.ops.push(if compare { Op::Cmp(*op) } else { Op::Arith(*op) });
                self.depth -= 1;
            }
            Expr::Call { builtin: Builtin::Date, arg } => {
                self.emit(arg, dummy);
                self.ops.push(Op::DateCall);
            }
            Expr::Call { builtin: Builtin::Money, arg } => {
                self.emit(arg, dummy);
                self.ops.push(Op::MoneyCall);
            }
            Expr::Call { builtin: Builtin::Len, arg } => {
                self.emit(arg, dummy);
                self.ops.push(Op::Len);
            }
            Expr::Call { builtin: Builtin::Exists, arg } => match &**arg {
                Expr::Path { root: PathRoot::Document, path } => {
                    let i = self.push_path(path);
                    self.ops.push(Op::ExistsPath(i));
                    self.produced();
                }
                // Reachable only through the defensive fallthrough above;
                // mirror the interpreter's shape-based answers.
                Expr::Path { .. } => {
                    let i = self.push_const(Value::Bool(true));
                    self.ops.push(Op::Const(i));
                    self.produced();
                }
                _ => {
                    let i = self.push_string("exists() needs a path argument".to_string());
                    self.ops.push(Op::Fail(i));
                    self.produced();
                }
            },
        }
    }

    /// Chain lowering for `and`/`or` trees whose every term is a fusible
    /// comparison: `[Cmp2Check(skip→end)…, Cmp2]`, where each non-final
    /// link decides in place and jumps past the chain when it
    /// short-circuits. Every skip lands *after* the final op, so no jump
    /// can target (and therefore bypass) another link. Returns false —
    /// emitting nothing — when any term doesn't fuse; the caller falls
    /// back to the general short-circuit lowering.
    ///
    /// Soundness of flattening `(a and b) and c` into `a, b, c`: each
    /// term is a comparison, which can only produce a bool or fail, so
    /// the tree's intermediate coercions are no-ops and the associativity
    /// of the source tree is unobservable — the term evaluation order and
    /// every short-circuit/error outcome are exactly the interpreter's.
    fn try_emit_cmp_chain(
        &mut self,
        expr: &Expr,
        chain_op: BinOp,
        dummy: &RuleContext<'_>,
    ) -> bool {
        let mut terms = Vec::new();
        flatten_chain(expr, chain_op, &mut terms);
        if terms.len() < 2 || !terms.iter().all(|t| fusible_cmp(t, dummy)) {
            return false;
        }
        let mut checks = Vec::new();
        for (i, term) in terms.iter().enumerate() {
            let Expr::Binary { op, lhs, rhs } = term else { unreachable!("fusible term") };
            let l = self.atom_of(lhs, dummy).expect("fusible lhs");
            let r = self.atom_of(rhs, dummy).expect("fusible rhs");
            if i + 1 == terms.len() {
                self.ops.push(Op::Cmp2 { op: *op, l, r });
            } else {
                checks.push(self.ops.len());
                self.ops.push(match chain_op {
                    BinOp::And => Op::Cmp2AndCheck { op: *op, l, r, skip: 0 },
                    _ => Op::Cmp2OrCheck { op: *op, l, r, skip: 0 },
                });
            }
        }
        let end = self.ops.len();
        for at in checks {
            let skip = u32::try_from(end - at - 1).expect("rule program too large");
            self.ops[at] = match self.ops[at] {
                Op::Cmp2AndCheck { op, l, r, .. } => Op::Cmp2AndCheck { op, l, r, skip },
                Op::Cmp2OrCheck { op, l, r, .. } => Op::Cmp2OrCheck { op, l, r, skip },
                other => unreachable!("patching non-check op {other:?}"),
            };
        }
        self.produced();
        true
    }

    /// Short-circuit lowering: `[lhs…, Check(skip), rhs…, Tail]`, where
    /// `skip` jumps past the rhs and the tail when the lhs decides. The
    /// tail's only job is the bool coercion of the rhs — when the rhs
    /// statically produces a bool (or always fails), it is elided.
    fn emit_logical(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        dummy: &RuleContext<'_>,
        check: Op,
        tail: Op,
    ) {
        self.emit(lhs, dummy);
        let at = self.ops.len();
        self.ops.push(check);
        self.depth -= 1;
        self.emit(rhs, dummy);
        if !self.last_op_is_bool() {
            self.ops.push(tail);
        }
        let skip = u32::try_from(self.ops.len() - at - 1).expect("rule program too large");
        self.ops[at] = match self.ops[at] {
            Op::AndCheck(_) => Op::AndCheck(skip),
            Op::OrCheck(_) => Op::OrCheck(skip),
            other => unreachable!("patching non-check op {other:?}"),
        };
    }

    /// Whether the op just emitted can only ever leave a bool on the stack
    /// (or fail). Conservative: `false` just keeps the coercing tail.
    fn last_op_is_bool(&self) -> bool {
        match self.ops.last() {
            Some(Op::Cmp(_) | Op::Cmp2 { .. } | Op::Not | Op::ExistsPath(_)) => true,
            Some(Op::AndTail | Op::OrTail) => true,
            // A skip target: the preceding check pushes a bool, and the op
            // here is the rhs tail position — already covered above.
            Some(Op::Const(i)) => matches!(self.consts[*i as usize], Value::Bool(_)),
            _ => false,
        }
    }

    /// The fusible-atom view of an expression, if it has one. Constant
    /// subtrees that fold to a *value* become pooled constants; constant
    /// subtrees that fold to an error are left to normal emission so the
    /// in-place `Fail` keeps its position.
    fn atom_of(&mut self, expr: &Expr, dummy: &RuleContext<'_>) -> Option<Atom> {
        if is_const(expr) {
            return match eval::eval(expr, dummy) {
                Ok(v) => Some(Atom::Const(self.push_const(v))),
                Err(_) => None,
            };
        }
        match expr {
            Expr::Path { root: PathRoot::Document, path } => Some(Atom::Path(self.push_path(path))),
            Expr::Path { root: PathRoot::Source, path } if path.segments().is_empty() => {
                Some(Atom::Source)
            }
            Expr::Path { root: PathRoot::Target, path } if path.segments().is_empty() => {
                Some(Atom::Target)
            }
            Expr::Call { builtin: Builtin::Len, arg } => match &**arg {
                Expr::Path { root: PathRoot::Document, path } => {
                    Some(Atom::LenPath(self.push_path(path)))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn emit_path(&mut self, root: PathRoot, path: &FieldPath) {
        match root {
            PathRoot::Document => {
                let i = self.push_path(path);
                self.ops.push(Op::Path(i));
            }
            PathRoot::Source if path.segments().is_empty() => self.ops.push(Op::Source),
            PathRoot::Target if path.segments().is_empty() => self.ops.push(Op::Target),
            // `source.x` roots the path at a text value, which can never
            // resolve — the interpreter reports PathNotFound unconditionally.
            PathRoot::Source | PathRoot::Target => {
                let reason = DocumentError::PathNotFound { path: path.to_string() }.to_string();
                let i = self.push_string(reason);
                self.ops.push(Op::Fail(i));
            }
        }
        self.produced();
    }

    fn produced(&mut self) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }

    fn push_const(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u32;
        }
        self.consts.push(v);
        u32::try_from(self.consts.len() - 1).expect("constant pool too large")
    }

    fn push_string(&mut self, s: String) -> u32 {
        if let Some(i) = self.strings.iter().position(|c| **c == *s) {
            return i as u32;
        }
        self.strings.push(s.into_boxed_str());
        u32::try_from(self.strings.len() - 1).expect("string pool too large")
    }

    fn push_path(&mut self, path: &FieldPath) -> u32 {
        let start = u32::try_from(self.segs.len()).expect("segment pool too large");
        for seg in path.segments() {
            self.segs.push(match seg {
                PathSeg::Field(name) => CSeg::Field(*name),
                PathSeg::Index(i) => CSeg::Index(*i),
            });
        }
        let len = u32::try_from(path.segments().len()).expect("path too long");
        let miss =
            self.push_string(DocumentError::PathNotFound { path: path.to_string() }.to_string());
        self.paths.push(PathInfo { start, len, miss });
        u32::try_from(self.paths.len() - 1).expect("path pool too large")
    }
}

/// One compiled guarded rule.
#[derive(Debug, Clone, PartialEq)]
struct CompiledRule {
    guard: CompiledExpr,
    body: CompiledExpr,
}

/// A rule function lowered to compiled programs, evaluated first-match-wins
/// with the interpreter's exact semantics (including the error cases).
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunction {
    name: String,
    rules: Vec<CompiledRule>,
    max_stack: usize,
}

impl CompiledFunction {
    /// Lowers every guard and body of a function.
    pub fn compile(function: &RuleFunction) -> Self {
        let rules: Vec<CompiledRule> = function
            .rules
            .iter()
            .map(|r| CompiledRule {
                guard: CompiledExpr::compile(&r.guard),
                body: CompiledExpr::compile(&r.body),
            })
            .collect();
        let max_stack =
            rules.iter().map(|r| r.guard.max_stack.max(r.body.max_stack)).max().unwrap_or(0);
        Self { name: function.name.clone(), rules, max_stack }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the function: the body of the first rule whose guard
    /// holds, or [`RuleError::NoRuleApplies`] — byte-identical to
    /// [`RuleFunction::invoke`].
    pub fn invoke(&self, ctx: &RuleContext<'_>) -> Result<Value> {
        let mut stack = Vec::with_capacity(self.max_stack);
        for rule in &self.rules {
            let guard = rule.guard.run(ctx, &mut stack)?;
            let holds = match guard.view() {
                View::Val(Value::Bool(b)) => *b,
                _ => {
                    return Err(eval_err(format!(
                        "expected a boolean result, got {}",
                        guard.type_name()
                    )))
                }
            };
            if holds {
                return rule.body.run(ctx, &mut stack).map(Operand::into_value);
            }
        }
        Err(RuleError::NoRuleApplies {
            function: self.name.clone(),
            source: ctx.source.to_string(),
            target: ctx.target.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::BusinessRule;
    use b2b_document::normalized::sample_po;

    fn both(src: &str, source: &str, target: &str, amount: i64) -> (Result<Value>, Result<Value>) {
        let doc = sample_po("4711", amount);
        let expr = Expr::parse(src).unwrap();
        let ctx = RuleContext::new(source, target, &doc);
        let interpreted = expr.eval(&ctx);
        let compiled = CompiledExpr::compile(&expr);
        let mut stack = Vec::new();
        let lowered = compiled.run(&ctx, &mut stack).map(Operand::into_value);
        (interpreted, lowered)
    }

    fn assert_agree(src: &str, source: &str, target: &str, amount: i64) {
        let (interpreted, compiled) = both(src, source, target, amount);
        assert_eq!(interpreted, compiled, "{src}");
    }

    #[test]
    fn paper_rule_agrees_with_interpreter() {
        let rule = "target == \"SAP\" and source == \"TP1\" and document.amount >= 55000";
        for (s, t, amount) in
            [("TP1", "SAP", 60_000), ("TP1", "SAP", 50_000), ("TP2", "SAP", 60_000)]
        {
            assert_agree(rule, s, t, amount);
        }
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        assert_agree("false and document.bogus == 1", "s", "t", 1);
        assert_agree("true or document.bogus == 1", "s", "t", 1);
        assert_agree("true and document.bogus == 1", "s", "t", 1);
        assert_agree("false or document.bogus == 1", "s", "t", 1);
    }

    #[test]
    fn error_text_matches_interpreter_exactly() {
        for src in [
            "document.bogus",
            "not 5",
            "\"a\" < 1",
            "source < 1",
            "1 < source",
            "len(document.amount)",
            "date(5)",
            "date(source)",
            "money(\"oops\")",
            "document.amount + 1",
            "source + 1",
            "-source",
            "exists(5)",
            "len(source)",
            "source == target",
            "source == \"s\"",
        ] {
            assert_agree(src, "s", "t", 1);
        }
    }

    #[test]
    fn constant_subtrees_fold_to_one_op() {
        let expr = Expr::parse("1 + 2 * 3").unwrap();
        let compiled = CompiledExpr::compile(&expr);
        assert_eq!(compiled.op_count(), 1, "pure literal tree folds to a single Const");
        assert_agree("1 + 2 * 3", "s", "t", 1);
    }

    #[test]
    fn constant_errors_fold_in_place_and_preserve_order() {
        // `not 5` always fails, but the lhs decides first: folding must
        // keep the Fail op behind the short-circuit skip.
        let expr = Expr::parse("false and not 5").unwrap();
        let compiled = CompiledExpr::compile(&expr);
        assert!(compiled.op_count() <= 4, "rhs folds to one Fail op");
        assert_agree("false and not 5", "s", "t", 1);
        assert_agree("true and not 5", "s", "t", 1);
    }

    #[test]
    fn folding_handles_overflow_errors() {
        assert_agree("9223372036854775807 + 1", "s", "t", 1);
        assert_agree("--9223372036854775807 - 2", "s", "t", 1);
    }

    #[test]
    fn compiled_function_matches_interpreted_invoke() {
        let f = RuleFunction::new("check-need-for-approval")
            .with_rule(
                BusinessRule::parse(
                    "r1",
                    "target == \"SAP\" and source == \"TP1\"",
                    "document.amount >= 55000",
                )
                .unwrap(),
            )
            .with_rule(
                BusinessRule::parse(
                    "r2",
                    "target == \"SAP\" and source == \"TP2\"",
                    "document.amount >= 40000",
                )
                .unwrap(),
            );
        let compiled = CompiledFunction::compile(&f);
        let doc = sample_po("1", 45_000);
        for (s, t) in [("TP1", "SAP"), ("TP2", "SAP"), ("TP9", "SAP"), ("TP1", "Oracle")] {
            let ctx = RuleContext::new(s, t, &doc);
            assert_eq!(f.invoke(&ctx), compiled.invoke(&ctx), "({s}, {t})");
        }
    }

    #[test]
    fn non_boolean_guard_reports_the_interpreter_error() {
        let f =
            RuleFunction::new("bad").with_rule(BusinessRule::parse("r", "1 + 1", "true").unwrap());
        let compiled = CompiledFunction::compile(&f);
        let doc = sample_po("1", 1);
        let ctx = RuleContext::new("s", "t", &doc);
        assert_eq!(f.invoke(&ctx), compiled.invoke(&ctx));
    }

    #[test]
    fn builtins_agree() {
        for src in [
            "exists(document.amount)",
            "exists(document.bogus)",
            "exists(source)",
            "len(document.lines)",
            "document.header.order_date < date(\"2002-01-01\")",
            "document.amount >= money(\"55000.00 USD\")",
            "document.lines[0].quantity * 2 + 1",
            "document.amount - document.amount",
            "-document.lines[0].quantity",
            "len(\"héllo\")",
        ] {
            assert_agree(src, "s", "t", 10);
        }
    }

    #[test]
    fn max_stack_is_sufficient_and_tight() {
        // Both comparisons fuse to Cmp2 atoms, so the whole guard runs in
        // one stack slot.
        let expr = Expr::parse("document.amount >= 55000 and source == \"TP1\"").unwrap();
        let compiled = CompiledExpr::compile(&expr);
        assert_eq!(compiled.max_stack(), 1);
        // Arithmetic does not fuse: the unfused operands stack up.
        let expr = Expr::parse("document.amount + 1 >= 55000").unwrap();
        let compiled = CompiledExpr::compile(&expr);
        assert!(compiled.max_stack() >= 2);
        assert!(compiled.max_stack() <= 3);
    }

    #[test]
    fn fused_comparisons_shrink_the_program() {
        // The paper's guard shape: a fused chain of three comparisons —
        // two in-place checks that jump past the chain when they decide,
        // plus the final comparison. No stack traffic until the result.
        let rule = "target == \"SAP\" and source == \"TP1\" and document.amount >= 55000";
        let compiled = CompiledExpr::compile(&Expr::parse(rule).unwrap());
        assert_eq!(compiled.op_count(), 3, "two Cmp2AndCheck + one Cmp2: {compiled:?}");
        assert_eq!(compiled.max_stack(), 1, "the chain runs in one stack slot");
        // Fusion changes nothing observable, including the error cases.
        for src in [
            "len(document.lines) >= 1 and target == \"SAP\"",
            "date(\"2001-01-01\") <= document.header.order_date",
            "document.bogus == 1",
            "len(document.bogus) == 1",
            "len(document.amount) == 1",
            "source == 5",
            "document.amount >= 55000 or source == \"TP1\"",
            // Chains: short-circuit exits, late errors, mixed nesting.
            "source == \"X\" or target == \"SAP\" or document.amount >= 99999",
            "source == \"X\" or target == \"Y\" or document.amount >= 99999",
            "target == \"SAP\" and len(document.bogus) >= 1 and source == \"TP1\"",
            "target == \"X\" and len(document.bogus) >= 1 and source == \"TP1\"",
            "source == \"TP1\" and (target == \"SAP\" or document.amount >= 99999)",
            "exists(document.amount) and source == \"TP1\" and target == \"SAP\"",
        ] {
            assert_agree(src, "TP1", "SAP", 60_000);
        }
    }
}
