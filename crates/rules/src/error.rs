//! Error type for the rule engine.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RuleError>;

/// Errors raised while parsing or evaluating business rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// Lexical error in a rule expression.
    Lex { offset: usize, reason: String },
    /// Syntax error in a rule expression.
    Parse { offset: usize, reason: String },
    /// Runtime evaluation error (type mismatch, missing path, …).
    Eval { reason: String },
    /// The paper's explicit error case: no rule in a function matched the
    /// given source/target/document.
    NoRuleApplies { function: String, source: String, target: String },
    /// A workflow step referenced a rule function that is not registered.
    UnknownFunction { function: String },
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lex { offset, reason } => write!(f, "lex error at {offset}: {reason}"),
            Self::Parse { offset, reason } => write!(f, "parse error at {offset}: {reason}"),
            Self::Eval { reason } => write!(f, "evaluation error: {reason}"),
            Self::NoRuleApplies { function, source, target } => write!(
                f,
                "no rule in `{function}` applies for source `{source}` and target `{target}`"
            ),
            Self::UnknownFunction { function } => {
                write!(f, "rule function `{function}` is not registered")
            }
        }
    }
}

impl std::error::Error for RuleError {}

impl From<b2b_document::DocumentError> for RuleError {
    fn from(e: b2b_document::DocumentError) -> Self {
        Self::Eval { reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_function() {
        let e = RuleError::NoRuleApplies {
            function: "check-need-for-approval".into(),
            source: "TP9".into(),
            target: "SAP".into(),
        };
        let text = e.to_string();
        assert!(text.contains("check-need-for-approval"));
        assert!(text.contains("TP9"));
    }
}
