//! Expression evaluation.

use super::{BinOp, Builtin, Expr, PathRoot};
use crate::error::{Result, RuleError};
use b2b_document::{Date, Document, Money, Value};
use std::cmp::Ordering;

/// Evaluation context handed to a rule: the paper's `(source, target,
/// document)` triple.
#[derive(Debug, Clone, Copy)]
pub struct RuleContext<'a> {
    /// Where the document came from (trading partner or application name).
    pub source: &'a str,
    /// Where the document goes (trading partner or application name).
    pub target: &'a str,
    /// The document under evaluation.
    pub document: &'a Document,
}

impl<'a> RuleContext<'a> {
    /// Builds a context.
    pub fn new(source: &'a str, target: &'a str, document: &'a Document) -> Self {
        Self { source, target, document }
    }
}

fn eval_err(reason: impl Into<String>) -> RuleError {
    RuleError::Eval { reason: reason.into() }
}

/// Evaluates an expression.
pub fn eval(expr: &Expr, ctx: &RuleContext<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Path { root, path } => {
            let rooted: Value;
            let base = match root {
                PathRoot::Source => {
                    rooted = Value::text(ctx.source);
                    &rooted
                }
                PathRoot::Target => {
                    rooted = Value::text(ctx.target);
                    &rooted
                }
                PathRoot::Document => ctx.document.body(),
            };
            path.get(base).cloned().map_err(|e| eval_err(e.to_string()))
        }
        Expr::Not(inner) => match eval(inner, ctx)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(eval_err(format!("`not` needs a bool, got {}", other.type_name()))),
        },
        Expr::Neg(inner) => match eval(inner, ctx)? {
            Value::Int(n) => Ok(Value::Int(
                n.checked_neg().ok_or_else(|| eval_err("integer negation overflow"))?,
            )),
            Value::Money(m) => {
                Ok(Value::Money(m.checked_mul(-1).map_err(|e| eval_err(e.to_string()))?))
            }
            other => Err(eval_err(format!("`-` needs int or money, got {}", other.type_name()))),
        },
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, ctx),
        Expr::Call { builtin, arg } => eval_call(*builtin, arg, ctx),
    }
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, ctx: &RuleContext<'_>) -> Result<Value> {
    match op {
        // Short-circuit logical operators.
        BinOp::And => {
            let l = eval(lhs, ctx)?.as_bool("and").map_err(|e| eval_err(e.to_string()))?;
            if !l {
                return Ok(Value::Bool(false));
            }
            let r = eval(rhs, ctx)?.as_bool("and").map_err(|e| eval_err(e.to_string()))?;
            Ok(Value::Bool(r))
        }
        BinOp::Or => {
            let l = eval(lhs, ctx)?.as_bool("or").map_err(|e| eval_err(e.to_string()))?;
            if l {
                return Ok(Value::Bool(true));
            }
            let r = eval(rhs, ctx)?.as_bool("or").map_err(|e| eval_err(e.to_string()))?;
            Ok(Value::Bool(r))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let l = eval(lhs, ctx)?;
            let r = eval(rhs, ctx)?;
            let ord = compare(&l, &r)?;
            let result = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!("comparison arm"),
            };
            Ok(Value::Bool(result))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => arithmetic(op, lhs, rhs, ctx),
    }
}

/// Compares two values, coercing `Int` to whole currency units when the
/// other side is `Money` (so `document.amount >= 55000` works as in the
/// paper). Shared with the compiled evaluator so the two dispatch modes
/// cannot drift on coercion semantics.
pub(crate) fn compare(l: &Value, r: &Value) -> Result<Ordering> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
        (Value::Text(a), Value::Text(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        (Value::Date(a), Value::Date(b)) => Ok(a.cmp(b)),
        (Value::Money(a), Value::Money(b)) => {
            a.checked_cmp(*b).map_err(|e| eval_err(e.to_string()))
        }
        (Value::Money(a), Value::Int(b)) => {
            a.checked_cmp(Money::from_units(*b, a.currency())).map_err(|e| eval_err(e.to_string()))
        }
        (Value::Int(a), Value::Money(b)) => {
            Money::from_units(*a, b.currency()).checked_cmp(*b).map_err(|e| eval_err(e.to_string()))
        }
        (a, b) => Err(eval_err(format!("cannot compare {} with {}", a.type_name(), b.type_name()))),
    }
}

fn arithmetic(op: BinOp, lhs: &Expr, rhs: &Expr, ctx: &RuleContext<'_>) -> Result<Value> {
    let l = eval(lhs, ctx)?;
    let r = eval(rhs, ctx)?;
    let overflow = || eval_err("integer overflow");
    match (op, l, r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => {
            Ok(Value::Int(a.checked_add(b).ok_or_else(overflow)?))
        }
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => {
            Ok(Value::Int(a.checked_sub(b).ok_or_else(overflow)?))
        }
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => {
            Ok(Value::Int(a.checked_mul(b).ok_or_else(overflow)?))
        }
        (BinOp::Add, Value::Money(a), Value::Money(b)) => {
            Ok(Value::Money(a.checked_add(b).map_err(|e| eval_err(e.to_string()))?))
        }
        (BinOp::Sub, Value::Money(a), Value::Money(b)) => {
            Ok(Value::Money(a.checked_sub(b).map_err(|e| eval_err(e.to_string()))?))
        }
        (BinOp::Mul, Value::Money(a), Value::Int(b))
        | (BinOp::Mul, Value::Int(b), Value::Money(a)) => {
            Ok(Value::Money(a.checked_mul(b).map_err(|e| eval_err(e.to_string()))?))
        }
        (op, a, b) => Err(eval_err(format!(
            "{op:?} is not defined for {} and {}",
            a.type_name(),
            b.type_name()
        ))),
    }
}

fn eval_call(builtin: Builtin, arg: &Expr, ctx: &RuleContext<'_>) -> Result<Value> {
    match builtin {
        Builtin::Date => {
            let v = eval(arg, ctx)?;
            let text = v.as_text("date()").map_err(|e| eval_err(e.to_string()))?;
            Ok(Value::Date(Date::parse_iso(text).map_err(|e| eval_err(e.to_string()))?))
        }
        Builtin::Money => {
            let v = eval(arg, ctx)?;
            let text = v.as_text("money()").map_err(|e| eval_err(e.to_string()))?;
            Ok(Value::Money(Money::parse(text).map_err(|e| eval_err(e.to_string()))?))
        }
        Builtin::Exists => match arg {
            Expr::Path { root: PathRoot::Document, path } => {
                Ok(Value::Bool(path.lookup(ctx.document.body()).is_some()))
            }
            Expr::Path { .. } => Ok(Value::Bool(true)),
            _ => Err(eval_err("exists() needs a path argument")),
        },
        Builtin::Len => match eval(arg, ctx)? {
            Value::List(items) => Ok(Value::Int(items.len() as i64)),
            Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
            other => Err(eval_err(format!("len() needs list or text, got {}", other.type_name()))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::normalized::sample_po;

    fn check(src: &str, source: &str, target: &str, amount: i64) -> Result<Value> {
        let doc = sample_po("4711", amount);
        let expr = Expr::parse(src)?;
        expr.eval(&RuleContext::new(source, target, &doc))
    }

    #[test]
    fn the_paper_rule_evaluates() {
        let rule = "target == \"SAP\" and source == \"TP1\" and document.amount >= 55000";
        assert_eq!(check(rule, "TP1", "SAP", 60_000).unwrap(), Value::Bool(true));
        assert_eq!(check(rule, "TP1", "SAP", 50_000).unwrap(), Value::Bool(false));
        assert_eq!(check(rule, "TP2", "SAP", 60_000).unwrap(), Value::Bool(false));
        assert_eq!(check(rule, "TP1", "Oracle", 60_000).unwrap(), Value::Bool(false));
    }

    #[test]
    fn money_int_coercion_works_both_directions() {
        assert_eq!(check("55000 <= document.amount", "s", "t", 55_000).unwrap(), Value::Bool(true));
        assert_eq!(check("document.amount < 55000", "s", "t", 54_999).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // document.bogus does not exist; `and` must not evaluate it.
        assert_eq!(
            check("false and document.bogus == 1", "s", "t", 1).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(check("true or document.bogus == 1", "s", "t", 1).unwrap(), Value::Bool(true));
        assert!(check("true and document.bogus == 1", "s", "t", 1).is_err());
    }

    #[test]
    fn builtins_work() {
        assert_eq!(check("exists(document.amount)", "s", "t", 1).unwrap(), Value::Bool(true));
        assert_eq!(check("exists(document.bogus)", "s", "t", 1).unwrap(), Value::Bool(false));
        assert_eq!(check("len(document.lines)", "s", "t", 1).unwrap(), Value::Int(1));
        assert_eq!(
            check("document.header.order_date < date(\"2002-01-01\")", "s", "t", 1).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            check("document.amount >= money(\"55000.00 USD\")", "s", "t", 55_000).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic_on_lines() {
        assert_eq!(
            check("document.lines[0].quantity * 2 + 1", "s", "t", 10).unwrap(),
            Value::Int(21)
        );
        assert_eq!(
            check("document.amount - document.amount", "s", "t", 10).unwrap().type_name(),
            "money"
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(check("document.amount + 1", "s", "t", 1).is_err(), "money + int undefined");
        assert!(check("not 5", "s", "t", 1).is_err());
        assert!(check("\"a\" < 1", "s", "t", 1).is_err());
        assert!(check("len(document.amount)", "s", "t", 1).is_err());
        assert!(check("date(5)", "s", "t", 1).is_err());
    }

    #[test]
    fn eval_bool_rejects_non_boolean() {
        let doc = sample_po("1", 1);
        let e = Expr::parse("1 + 1").unwrap();
        assert!(e.eval_bool(&RuleContext::new("s", "t", &doc)).is_err());
    }
}
