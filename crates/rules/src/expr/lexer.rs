//! Tokenizer for the rule expression language.

use crate::error::{Result, RuleError};

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`source`, `and`, `date`, field names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Double-quoted string literal (no escapes needed by the rule corpus).
    Str(String),
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.`
    Dot,
}

/// A token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Tokenizes rule source text.
pub fn lex(text: &str) -> Result<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'(' => push(&mut tokens, TokenKind::LParen, start, &mut i),
            b')' => push(&mut tokens, TokenKind::RParen, start, &mut i),
            b'[' => push(&mut tokens, TokenKind::LBracket, start, &mut i),
            b']' => push(&mut tokens, TokenKind::RBracket, start, &mut i),
            b'.' => push(&mut tokens, TokenKind::Dot, start, &mut i),
            b'+' => push(&mut tokens, TokenKind::Plus, start, &mut i),
            b'-' => push(&mut tokens, TokenKind::Minus, start, &mut i),
            b'*' => push(&mut tokens, TokenKind::Star, start, &mut i),
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::EqEq, offset: start });
                    i += 2;
                } else {
                    return Err(RuleError::Lex {
                        offset: start,
                        reason: "single `=`; use `==`".into(),
                    });
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::NotEq, offset: start });
                    i += 2;
                } else {
                    return Err(RuleError::Lex {
                        offset: start,
                        reason: "single `!`; use `!=` or `not`".into(),
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, offset: start });
                    i += 2;
                } else {
                    push(&mut tokens, TokenKind::Lt, start, &mut i);
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: start });
                    i += 2;
                } else {
                    push(&mut tokens, TokenKind::Gt, start, &mut i);
                }
            }
            b'"' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(RuleError::Lex {
                        offset: start,
                        reason: "unterminated string".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text[i + 1..j].to_string()),
                    offset: start,
                });
                i = j + 1;
            }
            b'0'..=b'9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: i64 = text[i..j].parse().map_err(|_| RuleError::Lex {
                    offset: start,
                    reason: "integer out of range".into(),
                })?;
                tokens.push(Token { kind: TokenKind::Int(n), offset: start });
                i = j;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'-')
                {
                    j += 1;
                }
                tokens
                    .push(Token { kind: TokenKind::Ident(text[i..j].to_string()), offset: start });
                i = j;
            }
            other => {
                return Err(RuleError::Lex {
                    offset: start,
                    reason: format!("unexpected character `{}`", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, offset: usize, i: &mut usize) {
    tokens.push(Token { kind, offset });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_rule() {
        let tokens =
            lex("target == \"SAP\" and source == \"TP1\" and document.amount >= 55000").unwrap();
        assert_eq!(tokens.len(), 13);
        assert_eq!(tokens[0].kind, TokenKind::Ident("target".into()));
        assert_eq!(tokens[1].kind, TokenKind::EqEq);
        assert_eq!(tokens[2].kind, TokenKind::Str("SAP".into()));
        assert_eq!(tokens[12].kind, TokenKind::Int(55000));
    }

    #[test]
    fn lexes_operators_and_brackets() {
        let tokens = lex("(a[0] + 1) * 2 - 3 <= 4 < 5 != 6 > 7").unwrap();
        let kinds: Vec<_> = tokens.into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::LBracket));
        assert!(kinds.contains(&TokenKind::Le));
        assert!(kinds.contains(&TokenKind::NotEq));
        assert!(kinds.contains(&TokenKind::Star));
    }

    #[test]
    fn reports_lex_errors_with_offset() {
        match lex("a = b") {
            Err(RuleError::Lex { offset, .. }) => assert_eq!(offset, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("\"open").is_err());
        assert!(lex("a ? b").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}
