//! The rule expression language.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! expr    := or
//! or      := and ( "or" and )*
//! and     := not ( "and" not )*
//! not     := "not" not | cmp
//! cmp     := sum ( ("=="|"!="|"<"|"<="|">"|">=") sum )?
//! sum     := term ( ("+"|"-") term )*
//! term    := factor ( "*" factor )*
//! factor  := literal | path | call | "(" expr ")" | "-" factor
//! literal := integer | string | "true" | "false"
//! call    := ident "(" args ")"            e.g. date("2001-09-17"),
//!                                          money("55000 USD"),
//!                                          exists(document.note),
//!                                          len(document.lines)
//! path    := "source" | "target" | "document" ("." field | "[" n "]")*
//! ```
//!
//! Comparing a [`Money`](b2b_document::Money) against an integer treats the
//! integer as whole currency units, so the paper's `document.amount >=
//! 55000` reads exactly as written.

pub(crate) mod eval;
mod lexer;
mod parser;

pub use eval::RuleContext;
pub use lexer::{lex, Token, TokenKind};

use crate::error::Result;
use b2b_document::{FieldPath, Value};
use serde::{Deserialize, Serialize};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Addition (ints, money).
    Add,
    /// Subtraction (ints, money).
    Sub,
    /// Multiplication (ints, money × int).
    Mul,
}

/// The variable a path is rooted at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathRoot {
    /// The trading partner or application the document came from.
    Source,
    /// The trading partner or application the document goes to.
    Target,
    /// The document under evaluation.
    Document,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Builtin {
    /// `date("YYYY-MM-DD")` — a date literal.
    Date,
    /// `money("55000 USD")` — a money literal.
    Money,
    /// `exists(path)` — whether the path resolves.
    Exists,
    /// `len(path)` — list length or text length.
    Len,
}

/// A parsed rule expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Constant value.
    Literal(Value),
    /// `source` or `target` (compared as text) or `document...` path.
    Path {
        /// Which context variable the path starts at.
        root: PathRoot,
        /// Remaining path below the root (empty for bare `source`).
        path: FieldPath,
    },
    /// Unary logical negation.
    Not(Box<Expr>),
    /// Unary arithmetic negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Built-in function call.
    Call {
        /// The function.
        builtin: Builtin,
        /// Its single argument.
        arg: Box<Expr>,
    },
}

impl Expr {
    /// Parses an expression from source text.
    pub fn parse(text: &str) -> Result<Self> {
        parser::parse(text)
    }

    /// Evaluates against a context.
    pub fn eval(&self, ctx: &RuleContext<'_>) -> Result<Value> {
        eval::eval(self, ctx)
    }

    /// Evaluates expecting a boolean result.
    pub fn eval_bool(&self, ctx: &RuleContext<'_>) -> Result<bool> {
        match self.eval(ctx)? {
            Value::Bool(b) => Ok(b),
            other => Err(crate::error::RuleError::Eval {
                reason: format!("expected a boolean result, got {}", other.type_name()),
            }),
        }
    }

    /// Number of AST nodes — used by the model-size metrics to count the
    /// complexity that inlined conditions add to workflow types.
    pub fn node_count(&self) -> usize {
        match self {
            Self::Literal(_) | Self::Path { .. } => 1,
            Self::Not(e) | Self::Neg(e) | Self::Call { arg: e, .. } => 1 + e.node_count(),
            Self::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_counts_all_nodes() {
        let e = Expr::parse("document.amount >= 55000 and source == \"TP1\"").unwrap();
        assert_eq!(e.node_count(), 7);
    }
}
