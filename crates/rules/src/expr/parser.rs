//! Recursive-descent parser for rule expressions.

use super::lexer::{lex, Token, TokenKind};
use super::{BinOp, Builtin, Expr, PathRoot};
use crate::error::{Result, RuleError};
use b2b_document::{FieldPath, PathSeg, Value};

/// Parses source text into an expression AST.
pub fn parse(text: &str) -> Result<Expr> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, reason: &str) -> RuleError {
        let offset = self.tokens.get(self.pos).map(|t| t.offset).unwrap_or(usize::MAX);
        RuleError::Parse {
            offset: if offset == usize::MAX { 0 } else { offset },
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(TokenKind::Ident(name)) = self.peek() {
            if name == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.sum_expr()?;
        let op = match self.peek() {
            Some(TokenKind::EqEq) => Some(BinOp::Eq),
            Some(TokenKind::NotEq) => Some(BinOp::Ne),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::Le) => Some(BinOp::Le),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.sum_expr()?;
            Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
        } else {
            Ok(lhs)
        }
    }

    fn sum_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.term_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term_expr()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        while self.eat(&TokenKind::Star) {
            let rhs = self.factor()?;
            lhs = Expr::Binary { op: BinOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(TokenKind::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(TokenKind::Str(s)) => Ok(Expr::Literal(Value::Text(s.into()))),
            Some(TokenKind::Minus) => Ok(Expr::Neg(Box::new(self.factor()?))),
            Some(TokenKind::LParen) => {
                let inner = self.or_expr()?;
                if !self.eat(&TokenKind::RParen) {
                    return Err(self.err("expected `)`"));
                }
                Ok(inner)
            }
            Some(TokenKind::Ident(name)) => self.ident_expr(name),
            _ => Err(self.err("expected an expression")),
        }
    }

    fn ident_expr(&mut self, name: String) -> Result<Expr> {
        match name.as_str() {
            "true" => return Ok(Expr::Literal(Value::Bool(true))),
            "false" => return Ok(Expr::Literal(Value::Bool(false))),
            "source" => return Ok(Expr::Path { root: PathRoot::Source, path: empty_path() }),
            "target" => return Ok(Expr::Path { root: PathRoot::Target, path: empty_path() }),
            "document" => {
                let path = self.path_tail()?;
                return Ok(Expr::Path { root: PathRoot::Document, path });
            }
            _ => {}
        }
        let builtin = match name.as_str() {
            "date" => Builtin::Date,
            "money" => Builtin::Money,
            "exists" => Builtin::Exists,
            "len" => Builtin::Len,
            other => return Err(self.err(&format!("unknown identifier `{other}`"))),
        };
        if !self.eat(&TokenKind::LParen) {
            return Err(self.err(&format!("`{name}` is a function; expected `(`")));
        }
        let arg = self.or_expr()?;
        if !self.eat(&TokenKind::RParen) {
            return Err(self.err("expected `)`"));
        }
        Ok(Expr::Call { builtin, arg: Box::new(arg) })
    }

    /// Parses `.field` / `[n]` chains after `document`.
    fn path_tail(&mut self) -> Result<FieldPath> {
        let mut segments = Vec::new();
        loop {
            if self.eat(&TokenKind::Dot) {
                match self.bump() {
                    Some(TokenKind::Ident(field)) => {
                        segments.push(PathSeg::Field(b2b_document::intern(&field)))
                    }
                    _ => return Err(self.err("expected field name after `.`")),
                }
            } else if self.eat(&TokenKind::LBracket) {
                match self.bump() {
                    Some(TokenKind::Int(n)) if n >= 0 => {
                        segments.push(PathSeg::Index(n as usize));
                    }
                    _ => return Err(self.err("expected index after `[`")),
                }
                if !self.eat(&TokenKind::RBracket) {
                    return Err(self.err("expected `]`"));
                }
            } else {
                break;
            }
        }
        Ok(FieldPath::from_segments(segments))
    }
}

fn empty_path() -> FieldPath {
    FieldPath::from_segments(Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_rule() {
        let e =
            parse("target == \"SAP\" and source == \"TP1\" and document.amount >= 55000").unwrap();
        // Left-associative: ((t and s) and amount).
        match e {
            Expr::Binary { op: BinOp::And, .. } => {}
            other => panic!("expected and, got {other:?}"),
        }
    }

    #[test]
    fn precedence_binds_arithmetic_tighter_than_comparison() {
        let e = parse("1 + 2 * 3 == 7").unwrap();
        match e {
            Expr::Binary { op: BinOp::Eq, lhs, .. } => match *lhs {
                Expr::Binary { op: BinOp::Add, .. } => {}
                other => panic!("expected add on lhs, got {other:?}"),
            },
            other => panic!("expected eq at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_paths_with_indices() {
        let e = parse("document.lines[0].quantity > 10").unwrap();
        match e {
            Expr::Binary { lhs, .. } => match *lhs {
                Expr::Path { root: PathRoot::Document, path } => {
                    assert_eq!(path.to_string(), "lines[0].quantity");
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_builtins_and_negation() {
        assert!(parse("exists(document.note)").is_ok());
        assert!(parse("len(document.lines) >= 2").is_ok());
        assert!(parse("date(\"2001-09-17\") < date(\"2001-10-01\")").is_ok());
        assert!(parse("money(\"55000 USD\") <= document.amount").is_ok());
        assert!(parse("not (source == \"TP1\")").is_ok());
        assert!(parse("-3 + 4 == 1").is_ok());
    }

    #[test]
    fn rejects_syntax_errors() {
        for bad in [
            "",
            "and",
            "document.",
            "document.lines[",
            "document.lines[x]",
            "(1 + 2",
            "1 2",
            "unknownfn(1)",
            "date 2",
            "frobnicate",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }
}
