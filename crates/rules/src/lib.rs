//! Externalized business rules (Section 4.3 of the paper).
//!
//! Business rules are trading-partner-specific decision logic — "POs from
//! TP1 need approval above 55 000, POs from TP2 above 40 000". The paper's
//! key design point is that these rules live *outside* workflow types:
//! a generic workflow step passes `(source, target, document)` to a named
//! rule function and branches on the returned value, so adding or removing
//! a trading partner never touches a workflow definition.
//!
//! This crate provides:
//!
//! * [`expr`] — a small expression language (lexer, parser, evaluator) over
//!   documents, with `source`/`target` context variables,
//! * [`rule`] — guarded rules and rule functions with the paper's
//!   "no rule applies → error" semantics,
//! * [`registry`] — the per-enterprise rule registry keyed by function name,
//! * [`approval`] — the paper's `check-need-for-approval` rule family.

pub mod approval;
pub mod compiled;
pub mod error;
pub mod expr;
pub mod registry;
pub mod rule;

pub use compiled::{CompiledExpr, CompiledFunction};
pub use error::{Result, RuleError};
pub use expr::{Expr, RuleContext};
pub use registry::RuleRegistry;
pub use rule::{BusinessRule, RuleFunction};
