//! Per-enterprise rule registry.
//!
//! Generic workflow steps name a rule function; the registry is the level
//! of indirection that keeps workflow types free of trading-partner
//! specifics (Section 4.3).

use crate::error::{Result, RuleError};
use crate::expr::RuleContext;
use crate::rule::RuleFunction;
use b2b_document::{Document, Value};
use std::collections::BTreeMap;

/// Registry of rule functions, keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleRegistry {
    functions: BTreeMap<String, RuleFunction>,
}

impl RuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a rule function.
    pub fn register(&mut self, function: RuleFunction) {
        self.functions.insert(function.name.clone(), function);
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Result<&RuleFunction> {
        self.functions
            .get(name)
            .ok_or_else(|| RuleError::UnknownFunction { function: name.to_string() })
    }

    /// Mutable lookup — used when business rules change (e.g. a new trading
    /// partner) without touching anything else.
    pub fn function_mut(&mut self, name: &str) -> Result<&mut RuleFunction> {
        self.functions
            .get_mut(name)
            .ok_or_else(|| RuleError::UnknownFunction { function: name.to_string() })
    }

    /// Invokes a function with the paper's `(source, target, document)`
    /// calling convention.
    pub fn invoke(
        &self,
        name: &str,
        source: &str,
        target: &str,
        document: &Document,
    ) -> Result<Value> {
        self.function(name)?.invoke(&RuleContext::new(source, target, document))
    }

    /// Names of all registered functions (sorted).
    pub fn function_names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }

    /// Total number of rules across functions (model-size metrics).
    pub fn rule_count(&self) -> usize {
        self.functions.values().map(|f| f.rules.len()).sum()
    }

    /// Total AST size across functions (model-size metrics).
    pub fn node_count(&self) -> usize {
        self.functions.values().map(RuleFunction::node_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::BusinessRule;
    use b2b_document::normalized::sample_po;

    #[test]
    fn registry_dispatches_by_name() {
        let mut reg = RuleRegistry::new();
        reg.register(
            RuleFunction::new("always-true")
                .with_rule(BusinessRule::parse("r", "true", "true").unwrap()),
        );
        let doc = sample_po("1", 1);
        assert_eq!(reg.invoke("always-true", "s", "t", &doc).unwrap(), Value::Bool(true));
        match reg.invoke("missing", "s", "t", &doc) {
            Err(RuleError::UnknownFunction { function }) => assert_eq!(function, "missing"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_aggregate_over_functions() {
        let mut reg = RuleRegistry::new();
        reg.register(
            RuleFunction::new("a").with_rule(BusinessRule::parse("r1", "true", "1 + 1").unwrap()),
        );
        reg.register(
            RuleFunction::new("b")
                .with_rule(BusinessRule::parse("r2", "source == \"x\"", "true").unwrap()),
        );
        assert_eq!(reg.rule_count(), 2);
        assert_eq!(reg.function_names(), ["a", "b"]);
        assert!(reg.node_count() >= 7);
    }

    #[test]
    fn function_mut_allows_in_place_evolution() {
        let mut reg = RuleRegistry::new();
        reg.register(RuleFunction::new("f"));
        reg.function_mut("f").unwrap().add_rule(BusinessRule::parse("r", "true", "42").unwrap());
        let doc = sample_po("1", 1);
        assert_eq!(reg.invoke("f", "s", "t", &doc).unwrap(), Value::Int(42));
    }
}
