//! Per-enterprise rule registry.
//!
//! Generic workflow steps name a rule function; the registry is the level
//! of indirection that keeps workflow types free of trading-partner
//! specifics (Section 4.3).
//!
//! Dispatch runs compiled programs ([`CompiledFunction`]) by default,
//! lowering each function lazily on first invocation and caching the
//! result; [`set_interpreted`](RuleRegistry::set_interpreted) switches
//! back to the tree interpreter (the two are observably identical — the
//! flag exists so experiments can measure the difference). Lookups borrow
//! the name end to end: the miss path is the only place a `String` is
//! allocated, and callers that merely probe should use
//! [`function_exists`](RuleRegistry::function_exists) instead.

use crate::compiled::CompiledFunction;
use crate::error::{Result, RuleError};
use crate::expr::RuleContext;
use crate::rule::RuleFunction;
use b2b_document::{Document, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Registry of rule functions, keyed by name.
#[derive(Debug, Default)]
pub struct RuleRegistry {
    functions: BTreeMap<String, RuleFunction>,
    /// Lazily compiled functions. Interior mutability keeps compilation an
    /// implementation detail of `&self` dispatch; a `RwLock` (not a
    /// `RefCell`) because the sharded execute stage shares the registry
    /// across worker threads. Compilation is deterministic, so which
    /// thread compiles first never changes the result.
    compiled: RwLock<BTreeMap<String, Arc<CompiledFunction>>>,
    interpret: bool,
}

impl Clone for RuleRegistry {
    fn clone(&self) -> Self {
        Self {
            functions: self.functions.clone(),
            compiled: RwLock::new(self.compiled_cache().clone()),
            interpret: self.interpret,
        }
    }
}

impl PartialEq for RuleRegistry {
    fn eq(&self, other: &Self) -> bool {
        // The compile cache is derived state; two registries with the same
        // functions are the same registry.
        self.functions == other.functions && self.interpret == other.interpret
    }
}

impl RuleRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a rule function, invalidating its compiled
    /// form.
    pub fn register(&mut self, function: RuleFunction) {
        self.compiled_cache_mut().remove(function.name.as_str());
        self.functions.insert(function.name.clone(), function);
    }

    /// Switches dispatch between compiled programs (default, `false`) and
    /// the tree interpreter. Results are identical either way.
    pub fn set_interpreted(&mut self, interpret: bool) {
        self.interpret = interpret;
    }

    /// Whether dispatch currently interprets rule trees.
    pub fn is_interpreted(&self) -> bool {
        self.interpret
    }

    /// Whether a function is registered — the allocation-free probe for
    /// callers that only branch on presence.
    pub fn function_exists(&self, name: &str) -> bool {
        self.functions.contains_key(name)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Result<&RuleFunction> {
        self.functions
            .get(name)
            .ok_or_else(|| RuleError::UnknownFunction { function: name.to_string() })
    }

    /// Mutable lookup — used when business rules change (e.g. a new trading
    /// partner) without touching anything else. Drops the function's
    /// compiled form, since the caller may mutate its rules.
    pub fn function_mut(&mut self, name: &str) -> Result<&mut RuleFunction> {
        self.compiled_cache_mut().remove(name);
        self.functions
            .get_mut(name)
            .ok_or_else(|| RuleError::UnknownFunction { function: name.to_string() })
    }

    /// The compiled form of a function, lowering it on first use.
    pub fn compiled(&self, name: &str) -> Result<Arc<CompiledFunction>> {
        if let Some(hit) = self.compiled_cache().get(name) {
            return Ok(hit.clone());
        }
        let lowered = Arc::new(CompiledFunction::compile(self.function(name)?));
        let mut cache = self.compiled_cache_mut();
        // Another thread may have compiled meanwhile; keep the first entry
        // (both are identical — compilation is deterministic).
        Ok(cache.entry(name.to_string()).or_insert(lowered).clone())
    }

    /// Invokes a function with the paper's `(source, target, document)`
    /// calling convention.
    pub fn invoke(
        &self,
        name: &str,
        source: &str,
        target: &str,
        document: &Document,
    ) -> Result<Value> {
        let ctx = RuleContext::new(source, target, document);
        if self.interpret {
            self.function(name)?.invoke(&ctx)
        } else {
            self.compiled(name)?.invoke(&ctx)
        }
    }

    /// Names of all registered functions (sorted).
    pub fn function_names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }

    /// Total number of rules across functions (model-size metrics).
    pub fn rule_count(&self) -> usize {
        self.functions.values().map(|f| f.rules.len()).sum()
    }

    /// Total AST size across functions (model-size metrics).
    pub fn node_count(&self) -> usize {
        self.functions.values().map(RuleFunction::node_count).sum()
    }

    /// Number of functions compiled so far (lazily populated).
    pub fn compiled_count(&self) -> usize {
        self.compiled_cache().len()
    }

    fn compiled_cache(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<CompiledFunction>>> {
        self.compiled.read().expect("rule compile cache poisoned")
    }

    fn compiled_cache_mut(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<CompiledFunction>>> {
        self.compiled.write().expect("rule compile cache poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::BusinessRule;
    use b2b_document::normalized::sample_po;

    #[test]
    fn registry_dispatches_by_name() {
        let mut reg = RuleRegistry::new();
        reg.register(
            RuleFunction::new("always-true")
                .with_rule(BusinessRule::parse("r", "true", "true").unwrap()),
        );
        let doc = sample_po("1", 1);
        assert_eq!(reg.invoke("always-true", "s", "t", &doc).unwrap(), Value::Bool(true));
        match reg.invoke("missing", "s", "t", &doc) {
            Err(RuleError::UnknownFunction { function }) => assert_eq!(function, "missing"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_aggregate_over_functions() {
        let mut reg = RuleRegistry::new();
        reg.register(
            RuleFunction::new("a").with_rule(BusinessRule::parse("r1", "true", "1 + 1").unwrap()),
        );
        reg.register(
            RuleFunction::new("b")
                .with_rule(BusinessRule::parse("r2", "source == \"x\"", "true").unwrap()),
        );
        assert_eq!(reg.rule_count(), 2);
        assert_eq!(reg.function_names(), ["a", "b"]);
        assert!(reg.node_count() >= 7);
    }

    #[test]
    fn function_mut_allows_in_place_evolution() {
        let mut reg = RuleRegistry::new();
        reg.register(RuleFunction::new("f"));
        reg.function_mut("f").unwrap().add_rule(BusinessRule::parse("r", "true", "42").unwrap());
        let doc = sample_po("1", 1);
        assert_eq!(reg.invoke("f", "s", "t", &doc).unwrap(), Value::Int(42));
    }

    #[test]
    fn function_exists_probes_without_erroring() {
        let mut reg = RuleRegistry::new();
        assert!(!reg.function_exists("f"));
        reg.register(RuleFunction::new("f"));
        assert!(reg.function_exists("f"));
    }

    #[test]
    fn compilation_is_lazy_and_cached() {
        let mut reg = RuleRegistry::new();
        reg.register(
            RuleFunction::new("f").with_rule(BusinessRule::parse("r", "true", "1").unwrap()),
        );
        assert_eq!(reg.compiled_count(), 0, "nothing compiled before first use");
        let doc = sample_po("1", 1);
        reg.invoke("f", "s", "t", &doc).unwrap();
        assert_eq!(reg.compiled_count(), 1);
        reg.invoke("f", "s", "t", &doc).unwrap();
        assert_eq!(reg.compiled_count(), 1, "second dispatch reuses the cache");
        let a = reg.compiled("f").unwrap();
        let b = reg.compiled("f").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache returns the same compiled function");
    }

    #[test]
    fn register_and_function_mut_invalidate_the_compiled_form() {
        let mut reg = RuleRegistry::new();
        reg.register(
            RuleFunction::new("f").with_rule(BusinessRule::parse("r", "true", "1").unwrap()),
        );
        let doc = sample_po("1", 1);
        reg.invoke("f", "s", "t", &doc).unwrap();
        assert_eq!(reg.compiled_count(), 1);
        reg.function_mut("f").unwrap().add_rule(BusinessRule::parse("r2", "true", "2").unwrap());
        assert_eq!(reg.compiled_count(), 0, "mutable access drops the stale compilation");
        assert_eq!(reg.invoke("f", "s", "t", &doc).unwrap(), Value::Int(1));
        reg.register(
            RuleFunction::new("f").with_rule(BusinessRule::parse("r", "true", "3").unwrap()),
        );
        assert_eq!(reg.compiled_count(), 0, "re-registering drops the stale compilation");
        assert_eq!(reg.invoke("f", "s", "t", &doc).unwrap(), Value::Int(3));
    }

    #[test]
    fn interpreted_and_compiled_dispatch_agree() {
        let mut reg = RuleRegistry::new();
        reg.register(RuleFunction::new("approval").with_rule(
            BusinessRule::parse("r1", "source == \"TP1\"", "document.amount >= 55000").unwrap(),
        ));
        let doc = sample_po("1", 60_000);
        let compiled = reg.invoke("approval", "TP1", "SAP", &doc);
        reg.set_interpreted(true);
        let interpreted = reg.invoke("approval", "TP1", "SAP", &doc);
        assert_eq!(compiled, interpreted);
        let compiled_err = {
            reg.set_interpreted(false);
            reg.invoke("approval", "TP9", "SAP", &doc)
        };
        reg.set_interpreted(true);
        assert_eq!(compiled_err, reg.invoke("approval", "TP9", "SAP", &doc));
    }
}
