//! Guarded business rules and rule functions.

use crate::error::{Result, RuleError};
use crate::expr::{Expr, RuleContext};
use b2b_document::Value;
use serde::{Deserialize, Serialize};

/// One business rule: a guard over `(source, target, document)` plus the
/// value to return when the guard matches.
///
/// This mirrors the paper's `check-need-for-approval` pseudo-code, where
/// each `if target == … and source == …` block is one rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusinessRule {
    /// Human-readable rule name (e.g. `"business rule 1"`).
    pub name: String,
    /// When this rule applies.
    pub guard: Expr,
    /// What it returns when it applies.
    pub body: Expr,
}

impl BusinessRule {
    /// Parses a rule from guard and body source text.
    pub fn parse(name: &str, guard: &str, body: &str) -> Result<Self> {
        Ok(Self { name: name.to_string(), guard: Expr::parse(guard)?, body: Expr::parse(body)? })
    }

    /// AST size of guard plus body (model-size metrics).
    pub fn node_count(&self) -> usize {
        self.guard.node_count() + self.body.node_count()
    }
}

/// A named collection of rules evaluated first-match-wins, with the
/// paper's explicit error case when nothing matches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleFunction {
    /// Function name workflow steps bind to (e.g. `check-need-for-approval`).
    pub name: String,
    /// Rules in evaluation order.
    pub rules: Vec<BusinessRule>,
}

impl RuleFunction {
    /// An empty function.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), rules: Vec::new() }
    }

    /// Appends a rule, builder style.
    pub fn with_rule(mut self, rule: BusinessRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Appends a rule in place (used when a new trading partner is added —
    /// the paper's point is that *only this* changes).
    pub fn add_rule(&mut self, rule: BusinessRule) {
        self.rules.push(rule);
    }

    /// Removes all rules whose guard mentions are managed under `name`;
    /// returns how many were removed.
    pub fn remove_rules_named(&mut self, name: &str) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.name != name);
        before - self.rules.len()
    }

    /// Evaluates the function: the body of the first rule whose guard holds,
    /// or [`RuleError::NoRuleApplies`].
    pub fn invoke(&self, ctx: &RuleContext<'_>) -> Result<Value> {
        for rule in &self.rules {
            if rule.guard.eval_bool(ctx)? {
                return rule.body.eval(ctx);
            }
        }
        Err(RuleError::NoRuleApplies {
            function: self.name.clone(),
            source: ctx.source.to_string(),
            target: ctx.target.to_string(),
        })
    }

    /// Total AST size across rules (model-size metrics).
    pub fn node_count(&self) -> usize {
        self.rules.iter().map(BusinessRule::node_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::normalized::sample_po;

    fn approval_function() -> RuleFunction {
        RuleFunction::new("check-need-for-approval")
            .with_rule(
                BusinessRule::parse(
                    "business rule 1",
                    "target == \"SAP\" and source == \"TP1\"",
                    "document.amount >= 55000",
                )
                .unwrap(),
            )
            .with_rule(
                BusinessRule::parse(
                    "business rule 2",
                    "target == \"SAP\" and source == \"TP2\"",
                    "document.amount >= 40000",
                )
                .unwrap(),
            )
    }

    #[test]
    fn first_matching_rule_wins() {
        let f = approval_function();
        let doc = sample_po("1", 45_000);
        assert_eq!(
            f.invoke(&RuleContext::new("TP1", "SAP", &doc)).unwrap(),
            Value::Bool(false),
            "TP1 threshold is 55000"
        );
        assert_eq!(
            f.invoke(&RuleContext::new("TP2", "SAP", &doc)).unwrap(),
            Value::Bool(true),
            "TP2 threshold is 40000"
        );
    }

    #[test]
    fn no_rule_applies_is_the_error_case() {
        let f = approval_function();
        let doc = sample_po("1", 45_000);
        match f.invoke(&RuleContext::new("TP9", "SAP", &doc)) {
            Err(RuleError::NoRuleApplies { function, source, .. }) => {
                assert_eq!(function, "check-need-for-approval");
                assert_eq!(source, "TP9");
            }
            other => panic!("expected NoRuleApplies, got {other:?}"),
        }
    }

    #[test]
    fn adding_a_partner_is_one_rule_append() {
        let mut f = approval_function();
        let before = f.rules.len();
        f.add_rule(
            BusinessRule::parse(
                "business rule TP3",
                "source == \"TP3\"",
                "document.amount >= 10000",
            )
            .unwrap(),
        );
        assert_eq!(f.rules.len(), before + 1);
        let doc = sample_po("1", 12_000);
        assert_eq!(f.invoke(&RuleContext::new("TP3", "SAP", &doc)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn removing_a_partner_restores_the_error_case() {
        let mut f = approval_function();
        assert_eq!(f.remove_rules_named("business rule 2"), 1);
        let doc = sample_po("1", 45_000);
        assert!(f.invoke(&RuleContext::new("TP2", "SAP", &doc)).is_err());
        assert_eq!(f.remove_rules_named("business rule 2"), 0);
    }

    #[test]
    fn node_count_sums_rules() {
        let f = approval_function();
        assert!(f.node_count() > 10);
    }
}
