//! Binary ↔ normalized programs.
//!
//! The binary wire format carries the canonical (normalized) shape
//! directly, so its programs are whole-subtree moves — no field renames,
//! no status-code tables, no envelope scaffolding. That is the point of
//! the format: the binding round trip for a binary partner is a handful
//! of subtree clones instead of a full field-by-field mapping, which is
//! what E20 measures against the text codecs.

use crate::mapping::MappingRule as R;
use crate::program::TransformProgram;
use b2b_document::{DocKind, FormatId};

/// The eight binary programs (PO/POA plus the RFQ/quote exchange, so
/// binary partners can join the broadcast scenarios).
pub fn binary_programs() -> Vec<TransformProgram> {
    vec![
        po_to_normalized(),
        po_from_normalized(),
        poa_to_normalized(),
        poa_from_normalized(),
        rfq_to_normalized(),
        rfq_from_normalized(),
        quote_to_normalized(),
        quote_from_normalized(),
    ]
}

fn po_rules() -> Vec<R> {
    vec![R::mv("header", "header"), R::mv("lines", "lines"), R::mv("amount", "amount")]
}

fn poa_rules() -> Vec<R> {
    vec![R::mv("header", "header"), R::mv("lines", "lines")]
}

fn header_only() -> Vec<R> {
    vec![R::mv("header", "header")]
}

fn po_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::BINARY,
        FormatId::NORMALIZED,
        po_rules(),
    )
}

fn po_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::NORMALIZED,
        FormatId::BINARY,
        po_rules(),
    )
}

fn poa_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::BINARY,
        FormatId::NORMALIZED,
        poa_rules(),
    )
}

fn poa_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::NORMALIZED,
        FormatId::BINARY,
        poa_rules(),
    )
}

fn rfq_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::RequestForQuote,
        FormatId::BINARY,
        FormatId::NORMALIZED,
        header_only(),
    )
}

fn rfq_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::RequestForQuote,
        FormatId::NORMALIZED,
        FormatId::BINARY,
        header_only(),
    )
}

fn quote_to_normalized() -> TransformProgram {
    TransformProgram::new(DocKind::Quote, FormatId::BINARY, FormatId::NORMALIZED, header_only())
}

fn quote_from_normalized() -> TransformProgram {
    TransformProgram::new(DocKind::Quote, FormatId::NORMALIZED, FormatId::BINARY, header_only())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TransformContext;
    use b2b_document::formats::sample_binary_po;
    use b2b_document::normalized::{build_poa, po_schema, poa_schema};
    use b2b_document::Date;

    fn ctx() -> TransformContext {
        TransformContext::new("Acme Manufacturing", "Apex Suppliers", "1", "bin-1")
    }

    #[test]
    fn binary_po_to_normalized_validates() {
        let normalized = po_to_normalized().apply(&sample_binary_po("4711", 3), &ctx()).unwrap();
        assert!(po_schema().accepts(&normalized), "{:?}", po_schema().validate(&normalized));
    }

    #[test]
    fn po_and_poa_round_trip_losslessly() {
        let po = sample_binary_po("4712", 2);
        let normalized = po_to_normalized().apply(&po, &ctx()).unwrap();
        let back = po_from_normalized().apply(&normalized, &ctx()).unwrap();
        assert_eq!(back.body(), po.body());
        assert_eq!(back.format(), &FormatId::BINARY);

        let poa = build_poa(&normalized, "accepted", Date::new(2001, 5, 23).unwrap()).unwrap();
        let wire = poa_from_normalized().apply(&poa, &ctx()).unwrap();
        let round = poa_to_normalized().apply(&wire, &ctx()).unwrap();
        assert!(poa_schema().accepts(&round), "{:?}", poa_schema().validate(&round));
        assert_eq!(round.body(), poa.body());
    }
}
