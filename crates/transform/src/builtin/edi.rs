//! EDI X12 ↔ normalized programs.

use crate::context::ContextKey;
use crate::mapping::MappingRule as R;
use crate::program::TransformProgram;
use b2b_document::{DocKind, FormatId};

const LINE_STATUS: &[(&str, &str)] =
    &[("accepted", "IA"), ("rejected", "IR"), ("accepted-with-changes", "IC")];
const HEADER_STATUS: &[(&str, &str)] =
    &[("accepted", "AD"), ("rejected", "RD"), ("accepted-with-changes", "AC")];

/// The four EDI programs.
pub fn edi_programs() -> Vec<TransformProgram> {
    vec![po_to_normalized(), po_from_normalized(), poa_to_normalized(), poa_from_normalized()]
}

fn po_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::EDI_X12,
        FormatId::NORMALIZED,
        vec![
            R::mv("beg.po_number", "header.po_number"),
            R::pick("n1", "code", "BY", "name", "header.buyer"),
            R::pick("n1", "code", "SE", "name", "header.seller"),
            R::mv("beg.order_date", "header.order_date"),
            R::for_each(
                "po1",
                "lines",
                vec![
                    R::mv("line_no", "line_no"),
                    R::mv("item", "item"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
            R::mv("amt", "amount"),
        ],
    )
}

fn po_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::NORMALIZED,
        FormatId::EDI_X12,
        vec![
            R::context("envelope.sender", ContextKey::Sender),
            R::context("envelope.receiver", ContextKey::Receiver),
            R::context("envelope.control_number", ContextKey::ControlNumber),
            R::const_text("beg.purpose_code", "00"),
            R::const_text("beg.type_code", "NE"),
            R::mv("header.po_number", "beg.po_number"),
            R::mv("header.order_date", "beg.order_date"),
            R::currency_of("amount", "cur.currency"),
            R::append("n1", vec![R::const_text("code", "BY"), R::mv("header.buyer", "name")]),
            R::append("n1", vec![R::const_text("code", "SE"), R::mv("header.seller", "name")]),
            R::for_each(
                "lines",
                "po1",
                vec![
                    R::mv("line_no", "line_no"),
                    R::mv("quantity", "quantity"),
                    R::const_text("uom", "EA"),
                    R::mv("unit_price", "unit_price"),
                    R::mv("item", "item"),
                ],
            ),
            R::mv("amount", "amt"),
        ],
    )
}

fn poa_to_normalized() -> TransformProgram {
    let (_, line_back) = super::status_maps("status", "status_code", LINE_STATUS);
    let (_, header_back) = super::status_maps("header.status", "bak.ack_type", HEADER_STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::EDI_X12,
        FormatId::NORMALIZED,
        vec![
            R::mv("bak.po_number", "header.po_number"),
            // The 855 carries no party names; interchange ids stand in.
            R::mv("envelope.receiver", "header.buyer"),
            R::mv("envelope.sender", "header.seller"),
            R::mv("bak.ack_date", "header.ack_date"),
            header_back,
            R::for_each(
                "ack",
                "lines",
                vec![R::mv("line_no", "line_no"), line_back, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

fn poa_from_normalized() -> TransformProgram {
    let (line_fwd, _) = super::status_maps("status", "status_code", LINE_STATUS);
    let (header_fwd, _) = super::status_maps("header.status", "bak.ack_type", HEADER_STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::NORMALIZED,
        FormatId::EDI_X12,
        vec![
            R::context("envelope.sender", ContextKey::Sender),
            R::context("envelope.receiver", ContextKey::Receiver),
            R::context("envelope.control_number", ContextKey::ControlNumber),
            R::const_text("bak.purpose_code", "00"),
            header_fwd,
            R::mv("header.po_number", "bak.po_number"),
            R::mv("header.ack_date", "bak.ack_date"),
            R::for_each(
                "lines",
                "ack",
                vec![R::mv("line_no", "line_no"), line_fwd, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TransformContext;
    use b2b_document::formats::sample_edi_po;
    use b2b_document::normalized::{build_poa, po_schema, poa_schema, PoBuilder};
    use b2b_document::{Currency, Date, Money};

    fn ctx() -> TransformContext {
        TransformContext::new("ACME", "GADGET", "000000001", "i-1")
    }

    fn plain_po() -> b2b_document::Document {
        PoBuilder::new(
            "4711",
            "ACME Manufacturing",
            "Gadget Supply Co",
            Date::new(2001, 9, 17).unwrap(),
            Currency::Usd,
        )
        .line("LAPTOP-T23", 12, Money::from_units(1, Currency::Usd))
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn edi_po_to_normalized_validates() {
        let normalized = po_to_normalized().apply(&sample_edi_po("4711", 12), &ctx()).unwrap();
        assert!(po_schema().accepts(&normalized), "{:?}", po_schema().validate(&normalized));
        assert_eq!(
            normalized.get("header.buyer").unwrap().as_text("b").unwrap(),
            "ACME Manufacturing"
        );
    }

    #[test]
    fn normalized_po_round_trips_through_edi() {
        let po = plain_po();
        let edi = po_from_normalized().apply(&po, &ctx()).unwrap();
        assert_eq!(edi.format(), &FormatId::EDI_X12);
        let back = po_to_normalized().apply(&edi, &ctx()).unwrap();
        assert_eq!(back.body(), po.body());
    }

    #[test]
    fn normalized_poa_round_trips_through_edi() {
        let po = plain_po();
        let poa = build_poa(&po, "accepted-with-changes", Date::new(2001, 9, 18).unwrap()).unwrap();
        // POA travels seller -> buyer.
        let poa_ctx = TransformContext::new("Gadget Supply Co", "ACME Manufacturing", "2", "i-2");
        let edi = poa_from_normalized().apply(&poa, &poa_ctx).unwrap();
        assert_eq!(
            edi.get("bak.ack_type").unwrap().as_text("t").unwrap(),
            "AC",
            "status mapped to the EDI code"
        );
        let back = poa_to_normalized().apply(&edi, &poa_ctx).unwrap();
        assert!(poa_schema().accepts(&back), "{:?}", poa_schema().validate(&back));
        assert_eq!(back.body(), poa.body());
    }

    #[test]
    fn unknown_status_code_is_rejected() {
        let po = plain_po();
        let mut poa = build_poa(&po, "accepted", Date::new(2001, 9, 18).unwrap()).unwrap();
        poa.set("header.status", b2b_document::Value::text("weird")).unwrap();
        assert!(poa_from_normalized().apply(&poa, &ctx()).is_err());
    }
}
