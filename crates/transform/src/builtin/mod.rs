//! Built-in transformation programs.
//!
//! For each wire or back-end format there are four programs: PO and POA,
//! each to and from the normalized format. Every program is a plain data
//! value built from [`MappingRule`]s — adding a new format means adding one
//! such module and registering its programs, nothing else.
//!
//! Status-code tables (normalized ↔ format):
//!
//! | normalized | EDI line | EDI hdr | RosettaNet | OAGIS | SAP | Oracle |
//! |---|---|---|---|---|---|---|
//! | `accepted` | `IA` | `AD` | `Accept` | `ACCEPTED` | `001` | `ACCEPTED` |
//! | `rejected` | `IR` | `RD` | `Reject` | `REJECTED` | `003` | `REJECTED` |
//! | `accepted-with-changes` | `IC` | `AC` | `Modify` | `MODIFIED` | `002` | `MODIFIED` |

mod binary;
mod edi;
mod oagis;
mod oracle;
mod rosettanet;
mod sap;

pub use binary::binary_programs;
pub use edi::edi_programs;
pub use oagis::oagis_programs;
pub use oracle::oracle_programs;
pub use rosettanet::rosettanet_programs;
pub use sap::sap_programs;

use crate::mapping::MappingRule;
use crate::program::TransformProgram;

/// All built-in programs (4 per format for PO/POA, plus the RosettaNet
/// and binary RFQ/quote pairs).
pub fn all_builtins() -> Vec<TransformProgram> {
    let mut out = Vec::with_capacity(32);
    out.extend(edi_programs());
    out.extend(rosettanet_programs());
    out.extend(oagis_programs());
    out.extend(sap_programs());
    out.extend(oracle_programs());
    out.extend(binary_programs());
    out
}

/// A value map and its inverse, from (normalized, format) code pairs.
pub(crate) fn status_maps(
    from: &str,
    to: &str,
    pairs: &[(&str, &str)],
) -> (MappingRule, MappingRule) {
    let forward = MappingRule::value_map(from, to, pairs);
    let inverted: Vec<(&str, &str)> = pairs.iter().map(|(a, b)| (*b, *a)).collect();
    let backward = MappingRule::value_map(to, from, &inverted);
    (forward, backward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_programs_have_unique_ids() {
        let programs = all_builtins();
        assert_eq!(programs.len(), 32);
        let ids: BTreeSet<String> = programs.iter().map(|p| p.id().to_string()).collect();
        assert_eq!(ids.len(), 32);
    }

    #[test]
    fn every_program_has_rules() {
        for p in all_builtins() {
            // Binary programs are whole-subtree moves (the wire shape is
            // the normalized shape), so one rule can be a full mapping.
            assert!(p.rule_count() >= 1, "{} looks empty", p.id());
        }
    }
}
