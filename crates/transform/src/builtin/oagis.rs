//! OAGIS ↔ normalized programs.

use crate::context::ContextKey;
use crate::mapping::MappingRule as R;
use crate::program::TransformProgram;
use b2b_document::{DocKind, FormatId};

const STATUS: &[(&str, &str)] =
    &[("accepted", "ACCEPTED"), ("rejected", "REJECTED"), ("accepted-with-changes", "MODIFIED")];

/// The four OAGIS programs.
pub fn oagis_programs() -> Vec<TransformProgram> {
    vec![po_to_normalized(), po_from_normalized(), poa_to_normalized(), poa_from_normalized()]
}

fn po_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::OAGIS,
        FormatId::NORMALIZED,
        vec![
            R::mv("data_area.po_header.po_id", "header.po_number"),
            R::mv("data_area.po_header.buyer_party", "header.buyer"),
            R::mv("data_area.po_header.seller_party", "header.seller"),
            R::mv("data_area.po_header.po_date", "header.order_date"),
            R::for_each(
                "data_area.po_lines",
                "lines",
                vec![
                    R::mv("line_num", "line_no"),
                    R::mv("item", "item"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
            R::mv("data_area.po_header.total", "amount"),
        ],
    )
}

fn po_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::NORMALIZED,
        FormatId::OAGIS,
        vec![
            R::context("control_area.sender", ContextKey::Sender),
            R::context("control_area.reference_id", ContextKey::InstanceId),
            R::mv("header.po_number", "data_area.po_header.po_id"),
            R::mv("header.order_date", "data_area.po_header.po_date"),
            R::currency_of("amount", "data_area.po_header.currency"),
            R::mv("header.buyer", "data_area.po_header.buyer_party"),
            R::mv("header.seller", "data_area.po_header.seller_party"),
            R::mv("amount", "data_area.po_header.total"),
            R::for_each(
                "lines",
                "data_area.po_lines",
                vec![
                    R::mv("line_no", "line_num"),
                    R::mv("item", "item"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
        ],
    )
}

fn poa_to_normalized() -> TransformProgram {
    let (_, header_back) =
        super::status_maps("header.status", "data_area.ack_header.status", STATUS);
    let (_, line_back) = super::status_maps("status", "status", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::OAGIS,
        FormatId::NORMALIZED,
        vec![
            R::mv("data_area.ack_header.po_id", "header.po_number"),
            // BODs carry no party block here; the binding's context does.
            R::context("header.buyer", ContextKey::Receiver),
            R::context("header.seller", ContextKey::Sender),
            R::mv("data_area.ack_header.ack_date", "header.ack_date"),
            header_back,
            R::for_each(
                "data_area.ack_lines",
                "lines",
                vec![R::mv("line_num", "line_no"), line_back, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

fn poa_from_normalized() -> TransformProgram {
    let (header_fwd, _) =
        super::status_maps("header.status", "data_area.ack_header.status", STATUS);
    let (line_fwd, _) = super::status_maps("status", "status", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::NORMALIZED,
        FormatId::OAGIS,
        vec![
            R::context("control_area.sender", ContextKey::Sender),
            R::context("control_area.reference_id", ContextKey::InstanceId),
            R::mv("header.po_number", "data_area.ack_header.po_id"),
            header_fwd,
            R::mv("header.ack_date", "data_area.ack_header.ack_date"),
            R::for_each(
                "lines",
                "data_area.ack_lines",
                vec![R::mv("line_no", "line_num"), line_fwd, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TransformContext;
    use b2b_document::formats::sample_oagis_po;
    use b2b_document::normalized::{build_poa, po_schema, poa_schema, PoBuilder};
    use b2b_document::{Currency, Date, Money};

    fn plain_po() -> b2b_document::Document {
        PoBuilder::new(
            "9001",
            "TP3 Logistics",
            "Gadget Supply Co",
            Date::new(2001, 9, 17).unwrap(),
            Currency::Usd,
        )
        .line("LAPTOP-T23", 25, Money::from_units(1, Currency::Usd))
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn oagis_po_to_normalized_validates() {
        let ctx = TransformContext::new("TP3 Logistics", "Gadget Supply Co", "1", "bod-1");
        let normalized = po_to_normalized().apply(&sample_oagis_po("9001", 25), &ctx).unwrap();
        assert!(po_schema().accepts(&normalized), "{:?}", po_schema().validate(&normalized));
    }

    #[test]
    fn normalized_po_round_trips_through_oagis() {
        let ctx = TransformContext::new("TP3 Logistics", "Gadget Supply Co", "1", "bod-1");
        let po = plain_po();
        let bod = po_from_normalized().apply(&po, &ctx).unwrap();
        let back = po_to_normalized().apply(&bod, &ctx).unwrap();
        assert_eq!(back.body(), po.body());
    }

    #[test]
    fn normalized_poa_round_trips_through_oagis() {
        let po = plain_po();
        let poa = build_poa(&po, "accepted", Date::new(2001, 9, 18).unwrap()).unwrap();
        let ctx = TransformContext::new("Gadget Supply Co", "TP3 Logistics", "2", "bod-2");
        let bod = poa_from_normalized().apply(&poa, &ctx).unwrap();
        assert_eq!(
            bod.get("data_area.ack_header.status").unwrap().as_text("s").unwrap(),
            "ACCEPTED"
        );
        let back = poa_to_normalized().apply(&bod, &ctx).unwrap();
        assert!(poa_schema().accepts(&back), "{:?}", poa_schema().validate(&back));
        assert_eq!(back.body(), poa.body());
    }
}
