//! Oracle applications ↔ normalized programs.

use crate::context::ContextKey;
use crate::mapping::MappingRule as R;
use crate::program::TransformProgram;
use b2b_document::{DocKind, FieldPath, FormatId, Value};

const STATUS: &[(&str, &str)] =
    &[("accepted", "ACCEPTED"), ("rejected", "REJECTED"), ("accepted-with-changes", "MODIFIED")];

/// Operating-unit id the simulator files everything under.
const DEFAULT_ORG_ID: i64 = 204;

/// The four Oracle programs.
pub fn oracle_programs() -> Vec<TransformProgram> {
    vec![po_to_normalized(), po_from_normalized(), poa_to_normalized(), poa_from_normalized()]
}

fn po_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::ORACLE_APPS,
        FormatId::NORMALIZED,
        vec![
            R::mv("po_header.segment1", "header.po_number"),
            R::mv("po_header.agent_name", "header.buyer"),
            R::mv("po_header.vendor_name", "header.seller"),
            R::mv("po_header.creation_date", "header.order_date"),
            R::for_each(
                "po_lines",
                "lines",
                vec![
                    R::mv("line_num", "line_no"),
                    R::mv("item_id", "item"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
            R::mv("po_header.total_amount", "amount"),
        ],
    )
}

fn po_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::NORMALIZED,
        FormatId::ORACLE_APPS,
        vec![
            R::mv("header.po_number", "po_header.segment1"),
            R::Const {
                to: FieldPath::parse("po_header.org_id").expect("static path"),
                value: Value::Int(DEFAULT_ORG_ID),
            },
            R::mv("header.seller", "po_header.vendor_name"),
            R::mv("header.buyer", "po_header.agent_name"),
            R::currency_of("amount", "po_header.currency_code"),
            R::mv("header.order_date", "po_header.creation_date"),
            R::mv("amount", "po_header.total_amount"),
            R::for_each(
                "lines",
                "po_lines",
                vec![
                    R::mv("line_no", "line_num"),
                    R::mv("item", "item_id"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
        ],
    )
}

fn poa_to_normalized() -> TransformProgram {
    let (_, header_back) = super::status_maps("header.status", "ack_header.status", STATUS);
    let (_, line_back) = super::status_maps("status", "status", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::ORACLE_APPS,
        FormatId::NORMALIZED,
        vec![
            R::mv("ack_header.po_number", "header.po_number"),
            R::context("header.buyer", ContextKey::Receiver),
            R::context("header.seller", ContextKey::Sender),
            R::mv("ack_header.ack_date", "header.ack_date"),
            header_back,
            R::for_each(
                "ack_lines",
                "lines",
                vec![R::mv("line_num", "line_no"), line_back, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

fn poa_from_normalized() -> TransformProgram {
    let (header_fwd, _) = super::status_maps("header.status", "ack_header.status", STATUS);
    let (line_fwd, _) = super::status_maps("status", "status", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::NORMALIZED,
        FormatId::ORACLE_APPS,
        vec![
            R::mv("header.po_number", "ack_header.po_number"),
            header_fwd,
            R::mv("header.ack_date", "ack_header.ack_date"),
            R::for_each(
                "lines",
                "ack_lines",
                vec![R::mv("line_no", "line_num"), line_fwd, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TransformContext;
    use b2b_document::formats::sample_oracle_po;
    use b2b_document::normalized::{build_poa, po_schema, poa_schema, PoBuilder};
    use b2b_document::{Currency, Date, Money};

    fn ctx() -> TransformContext {
        TransformContext::new("ACME Manufacturing", "Gadget Supply Co", "1", "i-1")
    }

    fn plain_po() -> b2b_document::Document {
        PoBuilder::new(
            "4711",
            "ACME Manufacturing",
            "Gadget Supply Co",
            Date::new(2001, 9, 17).unwrap(),
            Currency::Usd,
        )
        .line("LAPTOP-T23", 12, Money::from_units(1, Currency::Usd))
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn oracle_po_to_normalized_validates() {
        let normalized = po_to_normalized().apply(&sample_oracle_po("4711", 12), &ctx()).unwrap();
        assert!(po_schema().accepts(&normalized), "{:?}", po_schema().validate(&normalized));
    }

    #[test]
    fn normalized_po_round_trips_through_oracle() {
        let po = plain_po();
        let ora = po_from_normalized().apply(&po, &ctx()).unwrap();
        assert_eq!(ora.get("po_header.org_id").unwrap().as_int("o").unwrap(), DEFAULT_ORG_ID);
        let back = po_to_normalized().apply(&ora, &ctx()).unwrap();
        assert_eq!(back.body(), po.body());
    }

    #[test]
    fn normalized_poa_round_trips_through_oracle() {
        let po = plain_po();
        let poa = build_poa(&po, "accepted-with-changes", Date::new(2001, 9, 18).unwrap()).unwrap();
        let poa_ctx = TransformContext::new("Gadget Supply Co", "ACME Manufacturing", "2", "i-2");
        let ora = poa_from_normalized().apply(&poa, &poa_ctx).unwrap();
        assert_eq!(ora.get("ack_header.status").unwrap().as_text("s").unwrap(), "MODIFIED");
        let back = poa_to_normalized().apply(&ora, &poa_ctx).unwrap();
        assert!(poa_schema().accepts(&back), "{:?}", poa_schema().validate(&back));
        assert_eq!(back.body(), poa.body());
    }
}
