//! RosettaNet ↔ normalized programs.

use crate::context::ContextKey;
use crate::mapping::MappingRule as R;
use crate::program::TransformProgram;
use b2b_document::{DocKind, FormatId};

const STATUS: &[(&str, &str)] =
    &[("accepted", "Accept"), ("rejected", "Reject"), ("accepted-with-changes", "Modify")];

/// The eight RosettaNet programs (PO/POA plus the Section 2.3 RFQ/quote
/// exchange).
pub fn rosettanet_programs() -> Vec<TransformProgram> {
    vec![
        po_to_normalized(),
        po_from_normalized(),
        poa_to_normalized(),
        poa_from_normalized(),
        rfq_to_normalized(),
        rfq_from_normalized(),
        quote_to_normalized(),
        quote_from_normalized(),
    ]
}

fn rfq_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::RequestForQuote,
        FormatId::ROSETTANET,
        FormatId::NORMALIZED,
        vec![
            R::mv("quote_request.rfq_number", "header.rfq_number"),
            R::mv("quote_request.buyer", "header.buyer"),
            R::mv("quote_request.item", "header.item"),
            R::mv("quote_request.quantity", "header.quantity"),
            R::mv("quote_request.respond_by", "header.respond_by"),
        ],
    )
}

fn rfq_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::RequestForQuote,
        FormatId::NORMALIZED,
        FormatId::ROSETTANET,
        vec![
            R::context("service_header.from", ContextKey::Sender),
            R::context("service_header.to", ContextKey::Receiver),
            R::const_text("service_header.pip_code", "3A1"),
            R::context("service_header.instance_id", ContextKey::InstanceId),
            R::mv("header.rfq_number", "quote_request.rfq_number"),
            R::mv("header.buyer", "quote_request.buyer"),
            R::mv("header.item", "quote_request.item"),
            R::mv("header.quantity", "quote_request.quantity"),
            R::mv("header.respond_by", "quote_request.respond_by"),
        ],
    )
}

fn quote_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::Quote,
        FormatId::ROSETTANET,
        FormatId::NORMALIZED,
        vec![
            R::mv("quote.rfq_number", "header.rfq_number"),
            R::mv("quote.seller", "header.seller"),
            R::mv("quote.unit_price", "header.unit_price"),
            R::mv("quote.valid_until", "header.valid_until"),
        ],
    )
}

fn quote_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::Quote,
        FormatId::NORMALIZED,
        FormatId::ROSETTANET,
        vec![
            R::context("service_header.from", ContextKey::Sender),
            R::context("service_header.to", ContextKey::Receiver),
            R::const_text("service_header.pip_code", "3A1"),
            R::context("service_header.instance_id", ContextKey::InstanceId),
            R::mv("header.rfq_number", "quote.rfq_number"),
            R::mv("header.seller", "quote.seller"),
            R::currency_of("header.unit_price", "quote.currency"),
            R::mv("header.unit_price", "quote.unit_price"),
            R::mv("header.valid_until", "quote.valid_until"),
        ],
    )
}

fn po_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::ROSETTANET,
        FormatId::NORMALIZED,
        vec![
            R::mv("purchase_order.po_number", "header.po_number"),
            R::mv("purchase_order.buyer", "header.buyer"),
            R::mv("purchase_order.seller", "header.seller"),
            R::mv("purchase_order.order_date", "header.order_date"),
            R::for_each(
                "purchase_order.lines",
                "lines",
                vec![
                    R::mv("line_number", "line_no"),
                    R::mv("product_id", "item"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
            R::mv("purchase_order.total_amount", "amount"),
        ],
    )
}

fn po_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::NORMALIZED,
        FormatId::ROSETTANET,
        vec![
            R::context("service_header.from", ContextKey::Sender),
            R::context("service_header.to", ContextKey::Receiver),
            R::const_text("service_header.pip_code", "3A4"),
            R::context("service_header.instance_id", ContextKey::InstanceId),
            R::mv("header.po_number", "purchase_order.po_number"),
            R::mv("header.order_date", "purchase_order.order_date"),
            R::currency_of("amount", "purchase_order.currency"),
            R::mv("header.buyer", "purchase_order.buyer"),
            R::mv("header.seller", "purchase_order.seller"),
            R::for_each(
                "lines",
                "purchase_order.lines",
                vec![
                    R::mv("line_no", "line_number"),
                    R::mv("item", "product_id"),
                    R::mv("quantity", "quantity"),
                    R::mv("unit_price", "unit_price"),
                ],
            ),
            R::mv("amount", "purchase_order.total_amount"),
        ],
    )
}

fn poa_to_normalized() -> TransformProgram {
    let (_, header_back) =
        super::status_maps("header.status", "confirmation.response_code", STATUS);
    let (_, line_back) = super::status_maps("status", "response_code", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::ROSETTANET,
        FormatId::NORMALIZED,
        vec![
            R::mv("confirmation.po_number", "header.po_number"),
            // The confirmation travels seller -> buyer.
            R::mv("service_header.to", "header.buyer"),
            R::mv("service_header.from", "header.seller"),
            R::mv("confirmation.ack_date", "header.ack_date"),
            header_back,
            R::for_each(
                "confirmation.lines",
                "lines",
                vec![R::mv("line_number", "line_no"), line_back, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

fn poa_from_normalized() -> TransformProgram {
    let (header_fwd, _) = super::status_maps("header.status", "confirmation.response_code", STATUS);
    let (line_fwd, _) = super::status_maps("status", "response_code", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::NORMALIZED,
        FormatId::ROSETTANET,
        vec![
            R::context("service_header.from", ContextKey::Sender),
            R::context("service_header.to", ContextKey::Receiver),
            R::const_text("service_header.pip_code", "3A4"),
            R::context("service_header.instance_id", ContextKey::InstanceId),
            R::mv("header.po_number", "confirmation.po_number"),
            header_fwd,
            R::mv("header.ack_date", "confirmation.ack_date"),
            R::for_each(
                "lines",
                "confirmation.lines",
                vec![R::mv("line_no", "line_number"), line_fwd, R::mv("quantity", "quantity")],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TransformContext;
    use b2b_document::formats::sample_rn_po;
    use b2b_document::normalized::{build_poa, po_schema, poa_schema, PoBuilder};
    use b2b_document::{Currency, Date, Money};

    fn po_ctx() -> TransformContext {
        TransformContext::new("ACME Manufacturing", "Gadget Supply Co", "1", "pip-1")
    }

    fn plain_po() -> b2b_document::Document {
        PoBuilder::new(
            "4711",
            "ACME Manufacturing",
            "Gadget Supply Co",
            Date::new(2001, 9, 17).unwrap(),
            Currency::Usd,
        )
        .line("LAPTOP-T23", 12, Money::from_units(1, Currency::Usd))
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn rn_po_to_normalized_validates() {
        let normalized = po_to_normalized().apply(&sample_rn_po("4711", 12), &po_ctx()).unwrap();
        assert!(po_schema().accepts(&normalized), "{:?}", po_schema().validate(&normalized));
    }

    #[test]
    fn normalized_po_round_trips_through_rosettanet() {
        let po = plain_po();
        let rn = po_from_normalized().apply(&po, &po_ctx()).unwrap();
        assert_eq!(rn.get("service_header.pip_code").unwrap().as_text("p").unwrap(), "3A4");
        let back = po_to_normalized().apply(&rn, &po_ctx()).unwrap();
        assert_eq!(back.body(), po.body());
    }

    #[test]
    fn rfq_and_quote_round_trip_through_rosettanet() {
        use b2b_document::{record, CorrelationId, DocKind, Document, FormatId, Value};
        let rfq = Document::new(
            DocKind::RequestForQuote,
            FormatId::NORMALIZED,
            CorrelationId::for_rfq_number("9"),
            record! {
                "header" => record! {
                    "rfq_number" => Value::text("9"),
                    "buyer" => Value::text("ACME Manufacturing"),
                    "item" => Value::text("LAPTOP-T23"),
                    "quantity" => Value::Int(100),
                    "respond_by" => Value::Date(Date::new(2001, 10, 1).unwrap()),
                },
            },
        );
        assert!(b2b_document::normalized::rfq_schema().accepts(&rfq));
        let ctx = TransformContext::new("ACME Manufacturing", "Gadget Supply Co", "1", "pip-rfq");
        let wire = rfq_from_normalized().apply(&rfq, &ctx).unwrap();
        let back = rfq_to_normalized().apply(&wire, &ctx).unwrap();
        assert_eq!(back.body(), rfq.body());

        let quote = rfq.reply(
            DocKind::Quote,
            FormatId::NORMALIZED,
            record! {
                "header" => record! {
                    "rfq_number" => Value::text("9"),
                    "seller" => Value::text("Gadget Supply Co"),
                    "unit_price" => Value::Money(Money::from_cents(94_999, Currency::Usd)),
                    "valid_until" => Value::Date(Date::new(2001, 11, 1).unwrap()),
                },
            },
        );
        assert!(b2b_document::normalized::quote_schema().accepts(&quote));
        let qctx = TransformContext::new("Gadget Supply Co", "ACME Manufacturing", "2", "pip-q");
        let wire = quote_from_normalized().apply(&quote, &qctx).unwrap();
        let back = quote_to_normalized().apply(&wire, &qctx).unwrap();
        assert_eq!(back.body(), quote.body());
    }

    #[test]
    fn normalized_poa_round_trips_through_rosettanet() {
        let po = plain_po();
        let poa = build_poa(&po, "rejected", Date::new(2001, 9, 18).unwrap()).unwrap();
        let poa_ctx = TransformContext::new("Gadget Supply Co", "ACME Manufacturing", "2", "pip-2");
        let rn = poa_from_normalized().apply(&poa, &poa_ctx).unwrap();
        assert_eq!(rn.get("confirmation.response_code").unwrap().as_text("c").unwrap(), "Reject");
        let back = poa_to_normalized().apply(&rn, &poa_ctx).unwrap();
        assert!(poa_schema().accepts(&back), "{:?}", poa_schema().validate(&back));
        assert_eq!(back.body(), poa.body());
    }
}
