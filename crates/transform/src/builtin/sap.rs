//! SAP IDoc ↔ normalized programs (the paper's "Transform EDI to SAP PO"
//! path goes EDI → normalized → SAP through two of these).

use crate::context::ContextKey;
use crate::mapping::MappingRule as R;
use crate::program::TransformProgram;
use b2b_document::{DocKind, FormatId};

const STATUS: &[(&str, &str)] =
    &[("accepted", "001"), ("rejected", "003"), ("accepted-with-changes", "002")];

/// The four SAP programs.
pub fn sap_programs() -> Vec<TransformProgram> {
    vec![po_to_normalized(), po_from_normalized(), poa_to_normalized(), poa_from_normalized()]
}

fn po_to_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::SAP_IDOC,
        FormatId::NORMALIZED,
        vec![
            R::mv("e1edk01.belnr", "header.po_number"),
            R::pick("e1edka1", "parvw", "AG", "name", "header.buyer"),
            R::pick("e1edka1", "parvw", "LF", "name", "header.seller"),
            R::mv("e1edk01.audat", "header.order_date"),
            R::for_each(
                "e1edp01",
                "lines",
                vec![
                    R::mv("posex", "line_no"),
                    R::mv("matnr", "item"),
                    R::mv("menge", "quantity"),
                    R::mv("vprei", "unit_price"),
                ],
            ),
            R::mv("e1eds01.summe", "amount"),
        ],
    )
}

fn po_from_normalized() -> TransformProgram {
    TransformProgram::new(
        DocKind::PurchaseOrder,
        FormatId::NORMALIZED,
        FormatId::SAP_IDOC,
        vec![
            R::const_text("control.idoctyp", "ORDERS05"),
            R::context("control.sndprn", ContextKey::Sender),
            R::context("control.rcvprn", ContextKey::Receiver),
            R::context("control.docnum", ContextKey::ControlNumber),
            R::mv("header.po_number", "e1edk01.belnr"),
            R::currency_of("amount", "e1edk01.curcy"),
            R::mv("header.order_date", "e1edk01.audat"),
            R::append("e1edka1", vec![R::const_text("parvw", "AG"), R::mv("header.buyer", "name")]),
            R::append(
                "e1edka1",
                vec![R::const_text("parvw", "LF"), R::mv("header.seller", "name")],
            ),
            R::for_each(
                "lines",
                "e1edp01",
                vec![
                    R::mv("line_no", "posex"),
                    R::mv("quantity", "menge"),
                    R::mv("unit_price", "vprei"),
                    R::mv("item", "matnr"),
                ],
            ),
            R::mv("amount", "e1eds01.summe"),
        ],
    )
}

fn poa_to_normalized() -> TransformProgram {
    let (_, header_back) = super::status_maps("header.status", "e1edk01.action", STATUS);
    let (_, line_back) = super::status_maps("status", "action", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::SAP_IDOC,
        FormatId::NORMALIZED,
        vec![
            R::mv("e1edk01.belnr", "header.po_number"),
            R::context("header.buyer", ContextKey::Receiver),
            R::context("header.seller", ContextKey::Sender),
            R::mv("e1edk01.audat", "header.ack_date"),
            header_back,
            R::for_each(
                "e1edp01",
                "lines",
                vec![R::mv("posex", "line_no"), line_back, R::mv("menge", "quantity")],
            ),
        ],
    )
}

fn poa_from_normalized() -> TransformProgram {
    let (header_fwd, _) = super::status_maps("header.status", "e1edk01.action", STATUS);
    let (line_fwd, _) = super::status_maps("status", "action", STATUS);
    TransformProgram::new(
        DocKind::PurchaseOrderAck,
        FormatId::NORMALIZED,
        FormatId::SAP_IDOC,
        vec![
            R::const_text("control.idoctyp", "ORDRSP"),
            R::context("control.sndprn", ContextKey::Sender),
            R::context("control.rcvprn", ContextKey::Receiver),
            R::context("control.docnum", ContextKey::ControlNumber),
            R::mv("header.po_number", "e1edk01.belnr"),
            R::mv("header.ack_date", "e1edk01.audat"),
            header_fwd,
            R::for_each(
                "lines",
                "e1edp01",
                vec![R::mv("line_no", "posex"), R::mv("quantity", "menge"), line_fwd],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TransformContext;
    use b2b_document::formats::sample_sap_po;
    use b2b_document::normalized::{build_poa, po_schema, poa_schema, PoBuilder};
    use b2b_document::{Currency, Date, Money};

    fn ctx() -> TransformContext {
        TransformContext::new("ACME Manufacturing", "Gadget Supply Co", "idoc-1", "i-1")
    }

    fn plain_po() -> b2b_document::Document {
        PoBuilder::new(
            "4711",
            "ACME Manufacturing",
            "Gadget Supply Co",
            Date::new(2001, 9, 17).unwrap(),
            Currency::Usd,
        )
        .line("LAPTOP-T23", 12, Money::from_units(1, Currency::Usd))
        .unwrap()
        .build()
        .unwrap()
    }

    #[test]
    fn sap_po_to_normalized_validates() {
        let normalized = po_to_normalized().apply(&sample_sap_po("4711", 12), &ctx()).unwrap();
        assert!(po_schema().accepts(&normalized), "{:?}", po_schema().validate(&normalized));
    }

    #[test]
    fn normalized_po_round_trips_through_sap() {
        let po = plain_po();
        let idoc = po_from_normalized().apply(&po, &ctx()).unwrap();
        assert_eq!(idoc.get("control.idoctyp").unwrap().as_text("t").unwrap(), "ORDERS05");
        let back = po_to_normalized().apply(&idoc, &ctx()).unwrap();
        assert_eq!(back.body(), po.body());
    }

    #[test]
    fn normalized_poa_round_trips_through_sap() {
        let po = plain_po();
        let poa = build_poa(&po, "accepted", Date::new(2001, 9, 18).unwrap()).unwrap();
        let poa_ctx =
            TransformContext::new("Gadget Supply Co", "ACME Manufacturing", "idoc-2", "i-2");
        let idoc = poa_from_normalized().apply(&poa, &poa_ctx).unwrap();
        assert_eq!(idoc.get("e1edk01.action").unwrap().as_text("a").unwrap(), "001");
        let back = poa_to_normalized().apply(&idoc, &poa_ctx).unwrap();
        assert!(poa_schema().accepts(&back), "{:?}", poa_schema().validate(&back));
        assert_eq!(back.body(), poa.body());
    }
}
