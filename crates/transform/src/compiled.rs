//! Compiled transformation programs: the binding hot path.
//!
//! [`TransformProgram::apply`] interprets a [`MappingRule`] tree per
//! document, paying for path Display rendering, `BTreeMap` key clones, and
//! (for `Append`) a full remove/rebuild of the target list on every rule —
//! costs that exist only to produce good error messages or to keep the
//! interpreter simple. Since bindings run the *same* program for every
//! document of an agreement, that work is hoisted here into a one-time
//! compile:
//!
//! * field paths are pre-parsed into segment slices over a shared pool,
//!   with field names resolved to interned [`Symbol`]s and the exact
//!   `FieldPath` Display string precomputed for (cold) error paths,
//! * `ValueMap` tables are lowered to sorted slices searched by binary
//!   search,
//! * `ForEach`/`Append` bodies are flattened into one instruction stream
//!   with relative addressing (an op's body is the `body_len` ops that
//!   follow it),
//! * the executor writes into the target tree in place — intermediate
//!   records are created without re-rendering the path per rule, and
//!   `Append` pushes onto the existing list instead of removing and
//!   re-inserting it.
//!
//! The contract, pinned by `tests/properties.rs`, is that a compiled
//! program is *observably identical* to the interpreter: same output
//! documents, same [`TransformError`] values (byte-identical reasons),
//! same side effects on a partially written target when a rule fails.

use crate::context::{ContextKey, TransformContext};
use crate::error::{Result, TransformError};
use crate::mapping::MappingRule;
use crate::program::{TransformId, TransformProgram};
use b2b_document::{
    DocKind, Document, DocumentError, FieldVec, FormatId, Money, PathSeg, Symbol, Value,
};

/// One step of a compiled path: like [`PathSeg`], but with the field name
/// interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CSeg {
    /// Record field access by interned name.
    Field(Symbol),
    /// List element access by zero-based index.
    Index(usize),
}

/// A pre-resolved field path: a span into the shared segment pool plus the
/// exact `FieldPath` Display rendering (used only when building errors).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PathInfo {
    start: u32,
    len: u32,
    display: Box<str>,
    /// Presence analysis: how many leading segments of this (target) path
    /// are guaranteed to exist when the owning op runs. Execution aborts on
    /// the first error, so reaching an op proves every earlier op in the
    /// same scope succeeded — and with it, every key those ops wrote. The
    /// executor skips the `contains_key` probe for those segments and walks
    /// each parent record once. Always 0 for source paths.
    known: u32,
}

/// A `ValueMap` table lowered to a sorted slice.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CompiledMap {
    /// (code, replacement) pairs, sorted by code.
    pairs: Vec<(Box<str>, Box<str>)>,
    default: Option<Box<str>>,
}

/// Pool indexes. `u32` keeps [`Op`] small; programs are far below the cap.
type PathId = u32;
type StrId = u32;

/// One flattened instruction. `body_len` fields address the ops that
/// immediately follow (relative addressing); `rule` names the originating
/// rule's `describe()` string for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Move { from: PathId, to: PathId, optional: bool, rule: StrId },
    Const { to: PathId, value: u32, rule: StrId },
    ValueMap { from: PathId, to: PathId, map: u32, rule: StrId },
    ForEach { from: PathId, to: PathId, body_len: u32, rule: StrId },
    Pick { from: PathId, match_field: StrId, equals: StrId, take: StrId, to: PathId, rule: StrId },
    Append { to: PathId, body_len: u32, rule: StrId },
    Context { to: PathId, key: ContextKey, rule: StrId },
    CurrencyOf { from: PathId, to: PathId, rule: StrId },
    SumMoney { over: PathId, field: StrId, to: PathId, rule: StrId },
}

/// A [`TransformProgram`] lowered to a flat instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    id: TransformId,
    kind: DocKind,
    source_format: FormatId,
    target_format: FormatId,
    segs: Vec<CSeg>,
    paths: Vec<PathInfo>,
    strings: Vec<Box<str>>,
    consts: Vec<Value>,
    maps: Vec<CompiledMap>,
    ops: Vec<Op>,
}

impl CompiledProgram {
    /// Lowers a program. Compilation is a pure function of the program —
    /// compiling twice yields identical instruction streams and symbol
    /// tables, so lazy compilation cannot perturb determinism.
    pub fn compile(program: &TransformProgram) -> Self {
        let mut c = Self {
            id: program.id().clone(),
            kind: program.kind(),
            source_format: program.source_format().clone(),
            target_format: program.target_format().clone(),
            segs: Vec::new(),
            paths: Vec::new(),
            strings: Vec::new(),
            consts: Vec::new(),
            maps: Vec::new(),
            ops: Vec::new(),
        };
        c.lower(program.rules());
        c
    }

    /// Program id.
    pub fn id(&self) -> &TransformId {
        &self.id
    }

    /// Document kind handled.
    pub fn kind(&self) -> DocKind {
        self.kind
    }

    /// Source format.
    pub fn source_format(&self) -> &FormatId {
        &self.source_format
    }

    /// Target format.
    pub fn target_format(&self) -> &FormatId {
        &self.target_format
    }

    /// Instructions in the flattened stream (metrics, benches).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Distinct field names referenced by this program's paths.
    pub fn symbol_count(&self) -> usize {
        self.segs
            .iter()
            .filter_map(|s| match s {
                CSeg::Field(sym) => Some(*sym),
                CSeg::Index(_) => None,
            })
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    // ------------------------------------------------------------------
    // Lowering.

    fn lower(&mut self, rules: &[MappingRule]) {
        let mut present = std::collections::BTreeSet::new();
        self.lower_scope(rules, &mut present);
    }

    /// Lowers one scope (the top level, or a `ForEach`/`Append` body, whose
    /// target tree starts empty per element). `present` tracks which
    /// pure-field key prefixes of the scope's target are definitely present
    /// at each program point — see [`PathInfo::known`].
    fn lower_scope(
        &mut self,
        rules: &[MappingRule],
        present: &mut std::collections::BTreeSet<Vec<Symbol>>,
    ) {
        for rule in rules {
            let desc = self.add_string(&rule.describe());
            match rule {
                MappingRule::Move { from, to, optional } => {
                    let op = Op::Move {
                        from: self.add_path(from),
                        // An optional move writes nothing when its source is
                        // missing, so it proves nothing to later ops.
                        to: self.add_target_path(to, present, !*optional),
                        optional: *optional,
                        rule: desc,
                    };
                    self.ops.push(op);
                }
                MappingRule::Const { to, value } => {
                    let op = Op::Const {
                        to: self.add_target_path(to, present, true),
                        value: self.add_const(value),
                        rule: desc,
                    };
                    self.ops.push(op);
                }
                MappingRule::ValueMap { from, to, map, default } => {
                    // BTreeMap iteration is sorted: the pairs slice comes
                    // out binary-searchable for free.
                    let lowered = CompiledMap {
                        pairs: map
                            .iter()
                            .map(|(k, v)| (k.as_str().into(), v.as_str().into()))
                            .collect(),
                        default: default.as_deref().map(Into::into),
                    };
                    let map_id = u32::try_from(self.maps.len()).expect("map pool overflow");
                    self.maps.push(lowered);
                    let op = Op::ValueMap {
                        from: self.add_path(from),
                        to: self.add_target_path(to, present, true),
                        map: map_id,
                        rule: desc,
                    };
                    self.ops.push(op);
                }
                MappingRule::ForEach { from, to, rules } => {
                    let op = Op::ForEach {
                        from: self.add_path(from),
                        to: self.add_target_path(to, present, true),
                        body_len: 0,
                        rule: desc,
                    };
                    let at = self.push_with_body(op, rules);
                    let body_len = u32::try_from(self.ops.len() - at - 1).expect("body overflow");
                    if let Op::ForEach { body_len: slot, .. } = &mut self.ops[at] {
                        *slot = body_len;
                    }
                }
                MappingRule::Pick { from, match_field, equals, take, to } => {
                    let op = Op::Pick {
                        from: self.add_path(from),
                        match_field: self.add_string(match_field),
                        equals: self.add_string(equals),
                        take: self.add_string(take),
                        to: self.add_target_path(to, present, true),
                        rule: desc,
                    };
                    self.ops.push(op);
                }
                MappingRule::Append { to, rules } => {
                    let op = Op::Append {
                        to: self.add_target_path(to, present, true),
                        body_len: 0,
                        rule: desc,
                    };
                    let at = self.push_with_body(op, rules);
                    let body_len = u32::try_from(self.ops.len() - at - 1).expect("body overflow");
                    if let Op::Append { body_len: slot, .. } = &mut self.ops[at] {
                        *slot = body_len;
                    }
                }
                MappingRule::Context { to, key } => {
                    let op = Op::Context {
                        to: self.add_target_path(to, present, true),
                        key: *key,
                        rule: desc,
                    };
                    self.ops.push(op);
                }
                MappingRule::CurrencyOf { from, to } => {
                    let op = Op::CurrencyOf {
                        from: self.add_path(from),
                        to: self.add_target_path(to, present, true),
                        rule: desc,
                    };
                    self.ops.push(op);
                }
                MappingRule::SumMoney { over, field, to } => {
                    let op = Op::SumMoney {
                        over: self.add_path(over),
                        field: self.add_string(field),
                        to: self.add_target_path(to, present, true),
                        rule: desc,
                    };
                    self.ops.push(op);
                }
            }
        }
    }

    /// Pushes a header op, lowers its body right behind it, and returns the
    /// header's index for back-patching the body length. The body writes
    /// into a fresh element record per item, so it gets a fresh presence
    /// scope.
    fn push_with_body(&mut self, op: Op, body: &[MappingRule]) -> usize {
        let at = self.ops.len();
        self.ops.push(op);
        let mut body_present = std::collections::BTreeSet::new();
        self.lower_scope(body, &mut body_present);
        at
    }

    /// Interns a path's segments into the pool (source paths; `known` 0).
    fn add_path(&mut self, path: &b2b_document::FieldPath) -> PathId {
        self.push_path(path, 0)
    }

    /// Interns a target path, computing how many of its leading keys are
    /// already guaranteed present and recording the keys this op's write
    /// will in turn guarantee for later ops (when `writes` — an optional
    /// move may not write).
    fn add_target_path(
        &mut self,
        path: &b2b_document::FieldPath,
        present: &mut std::collections::BTreeSet<Vec<Symbol>>,
        writes: bool,
    ) -> PathId {
        // The pure-field prefix is all presence analysis can name; stop at
        // the first list index.
        let mut syms = Vec::new();
        for seg in path.segments() {
            match seg {
                PathSeg::Field(name) => syms.push(*name),
                PathSeg::Index(_) => break,
            }
        }
        let mut known = 0u32;
        for j in 1..=syms.len() {
            if present.contains(&syms[..j]) {
                known = u32::try_from(j).expect("path depth overflow");
            } else {
                break;
            }
        }
        // A write may replace the whole subtree below its full path:
        // anything previously proven underneath is gone. This must run even
        // when `writes` is false — an optional move still overwrites the
        // target whenever its source exists, it just proves nothing when it
        // doesn't. (`Append` and `ForEach` never destroy existing keys, but
        // invalidating is merely conservative.)
        if syms.len() == path.segments().len() {
            present.retain(|q| !(q.len() > syms.len() && q.starts_with(&syms)));
        }
        if writes {
            // A guaranteed write proves every key on the path itself.
            for j in 1..=syms.len() {
                present.insert(syms[..j].to_vec());
            }
        }
        self.push_path(path, known)
    }

    fn push_path(&mut self, path: &b2b_document::FieldPath, known: u32) -> PathId {
        let start = u32::try_from(self.segs.len()).expect("segment pool overflow");
        for seg in path.segments() {
            let cseg = match seg {
                PathSeg::Field(name) => CSeg::Field(*name),
                PathSeg::Index(i) => CSeg::Index(*i),
            };
            self.segs.push(cseg);
        }
        let len = u32::try_from(path.segments().len()).expect("segment pool overflow");
        let id = u32::try_from(self.paths.len()).expect("path pool overflow");
        self.paths.push(PathInfo { start, len, display: path.to_string().into(), known });
        id
    }

    fn add_string(&mut self, s: &str) -> StrId {
        let id = u32::try_from(self.strings.len()).expect("string pool overflow");
        self.strings.push(s.into());
        id
    }

    fn add_const(&mut self, v: &Value) -> u32 {
        let id = u32::try_from(self.consts.len()).expect("const pool overflow");
        self.consts.push(v.clone());
        id
    }

    // ------------------------------------------------------------------
    // Execution.

    /// Applies the compiled program; drop-in for [`TransformProgram::apply`]
    /// with identical outputs and errors.
    pub fn apply(&self, doc: &Document, ctx: &TransformContext) -> Result<Document> {
        if doc.format() != &self.source_format {
            return Err(TransformError::WrongInput {
                program: self.id.to_string(),
                reason: format!("expected format {}, got {}", self.source_format, doc.format()),
            });
        }
        if doc.kind() != self.kind {
            return Err(TransformError::WrongInput {
                program: self.id.to_string(),
                reason: format!("expected kind {}, got {}", self.kind, doc.kind()),
            });
        }
        // Each top-level op sets at most one root field, so the op count
        // bounds the root record's arity.
        let mut target = Value::Record(FieldVec::with_capacity(self.ops.len()));
        self.run_ops(&self.ops, doc.body(), &mut target, ctx)?;
        Ok(doc.reformatted(self.target_format.clone(), target))
    }

    fn run_ops(
        &self,
        ops: &[Op],
        source: &Value,
        target: &mut Value,
        ctx: &TransformContext,
    ) -> Result<()> {
        let mut i = 0;
        while i < ops.len() {
            let op = &ops[i];
            i += 1;
            match *op {
                Op::Move { from, to, optional, rule } => match self.lookup(from, source) {
                    Some(v) => {
                        let v = v.clone();
                        self.set_or_rule_err(to, target, v, rule)?;
                    }
                    None if optional => {}
                    None => {
                        return Err(self.rule_err(
                            rule,
                            format!("source path `{}` not found", self.display(from)),
                        ))
                    }
                },
                Op::Const { to, value, rule } => {
                    let v = self.consts[value as usize].clone();
                    self.set_or_rule_err(to, target, v, rule)?;
                }
                Op::ValueMap { from, to, map, rule } => {
                    let v = self.lookup_required(from, source, rule)?;
                    let code = self.as_text(v, from, rule)?;
                    let table = &self.maps[map as usize];
                    let mapped = match table.pairs.binary_search_by(|(k, _)| k.as_ref().cmp(code)) {
                        Ok(hit) => table.pairs[hit].1.to_string(),
                        Err(_) => match &table.default {
                            Some(d) => d.to_string(),
                            None => {
                                return Err(
                                    self.rule_err(rule, format!("code `{code}` not in value map"))
                                )
                            }
                        },
                    };
                    self.set_or_rule_err(to, target, Value::Text(mapped.into()), rule)?;
                }
                Op::ForEach { from, to, body_len, rule } => {
                    let body = &ops[i..i + body_len as usize];
                    i += body_len as usize;
                    let items =
                        self.as_list(self.lookup_required(from, source, rule)?, from, rule)?;
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        // Each body op sets at most one field; sizing the
                        // element up front makes construction one
                        // allocation with no growth reallocs.
                        let mut element = Value::Record(FieldVec::with_capacity(body_len as usize));
                        self.run_ops(body, item, &mut element, ctx)?;
                        out.push(element);
                    }
                    self.set_or_rule_err(to, target, Value::List(out), rule)?;
                }
                Op::Pick { from, match_field, equals, take, to, rule } => {
                    let items =
                        self.as_list(self.lookup_required(from, source, rule)?, from, rule)?;
                    let match_field = &*self.strings[match_field as usize];
                    let equals = &*self.strings[equals as usize];
                    let take = &*self.strings[take as usize];
                    let mut taken = None;
                    for item in items {
                        let rec = match item {
                            Value::Record(fields) => fields,
                            other => {
                                return Err(self.mismatch_err("record", other, from, rule));
                            }
                        };
                        if let Some(Value::Text(code)) = rec.get(match_field) {
                            if code == equals {
                                taken = Some(rec.get(take).ok_or_else(|| {
                                    self.rule_err(
                                        rule,
                                        format!("matched element has no field `{take}`"),
                                    )
                                })?);
                                break;
                            }
                        }
                    }
                    let Some(taken) = taken else {
                        return Err(self.rule_err(
                            rule,
                            format!("no element with {match_field} == `{equals}`"),
                        ));
                    };
                    let v = taken.clone();
                    self.set_or_rule_err(to, target, v, rule)?;
                }
                Op::Append { to, body_len, rule } => {
                    let body = &ops[i..i + body_len as usize];
                    i += body_len as usize;
                    let mut element = Value::Record(FieldVec::with_capacity(body_len as usize));
                    self.run_ops(body, source, &mut element, ctx)?;
                    self.append(to, target, element, rule)?;
                }
                Op::Context { to, key, rule } => {
                    self.set_or_rule_err(to, target, Value::text(ctx.get(key)), rule)?;
                }
                Op::CurrencyOf { from, to, rule } => {
                    let v = self.lookup_required(from, source, rule)?;
                    let money = self.as_money(v, from, rule)?;
                    self.set_or_rule_err(to, target, Value::text(money.currency().code()), rule)?;
                }
                Op::SumMoney { over, field, to, rule } => {
                    let items =
                        self.as_list(self.lookup_required(over, source, rule)?, over, rule)?;
                    let field = &*self.strings[field as usize];
                    let mut sum: Option<Money> = None;
                    for (idx, item) in items.iter().enumerate() {
                        // `at` is only needed for errors; render it lazily
                        // (the interpreter formats it per item).
                        let at = || format!("{}[{idx}]", self.display(over));
                        let rec = match item {
                            Value::Record(fields) => fields,
                            other => {
                                return Err(self.rule_err(
                                    rule,
                                    type_mismatch("record", other, at()).to_string(),
                                ));
                            }
                        };
                        let m = match rec.get(field) {
                            Some(Value::Money(m)) => *m,
                            Some(other) => {
                                return Err(self.rule_err(
                                    rule,
                                    type_mismatch("money", other, at()).to_string(),
                                ));
                            }
                            None => {
                                return Err(
                                    self.rule_err(rule, format!("{} has no field `{field}`", at()))
                                );
                            }
                        };
                        sum = Some(match sum {
                            None => m,
                            Some(acc) => acc
                                .checked_add(m)
                                .map_err(|e| self.rule_err(rule, e.to_string()))?,
                        });
                    }
                    let total =
                        sum.ok_or_else(|| self.rule_err(rule, "cannot sum an empty list".into()))?;
                    self.set_or_rule_err(to, target, Value::Money(total), rule)?;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Path primitives over the segment pool.

    fn path_segs(&self, p: PathId) -> &[CSeg] {
        let info = &self.paths[p as usize];
        &self.segs[info.start as usize..(info.start + info.len) as usize]
    }

    fn display(&self, p: PathId) -> &str {
        &self.paths[p as usize].display
    }

    /// `FieldPath::lookup` over pre-resolved segments.
    fn lookup<'v>(&self, p: PathId, root: &'v Value) -> Option<&'v Value> {
        let mut cur = root;
        for seg in self.path_segs(p) {
            cur = match (seg, cur) {
                (CSeg::Field(sym), Value::Record(fields)) => fields.get_sym(*sym)?,
                (CSeg::Index(i), Value::List(items)) => items.get(*i)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// `FieldPath::set` over pre-resolved segments: identical writes and
    /// identical errors, but the path Display string and intermediate map
    /// keys are only rendered when actually needed.
    fn set(
        &self,
        p: PathId,
        root: &mut Value,
        value: Value,
    ) -> std::result::Result<(), DocumentError> {
        let known = self.paths[p as usize].known;
        let segs = self.path_segs(p);
        let (last, init) = segs.split_last().expect("compiled paths are never empty");
        let mut cur = root;
        for (j, seg) in init.iter().enumerate() {
            cur = self.step_mut(cur, seg, p, (j as u32) < known)?;
        }
        match last {
            CSeg::Field(sym) => {
                let rec = self.as_record_mut(cur, p)?;
                rec.insert(*sym, value);
                Ok(())
            }
            CSeg::Index(i) => match cur {
                Value::List(items) => {
                    let slot = items.get_mut(*i).ok_or_else(|| DocumentError::PathNotFound {
                        path: self.display(p).to_string(),
                    })?;
                    *slot = value;
                    Ok(())
                }
                other => Err(type_mismatch("list", other, self.display(p).to_string())),
            },
        }
    }

    /// One intermediate step of a mutable walk, creating missing records
    /// exactly like `FieldPath::set` does. `known` skips the presence probe
    /// for keys guaranteed by presence analysis (see [`PathInfo::known`]).
    fn step_mut<'v>(
        &self,
        cur: &'v mut Value,
        seg: &CSeg,
        p: PathId,
        known: bool,
    ) -> std::result::Result<&'v mut Value, DocumentError> {
        match seg {
            CSeg::Field(sym) => {
                let rec = self.as_record_mut(cur, p)?;
                if known {
                    Ok(rec.get_sym_mut(*sym).expect("presence analysis guarantees this key"))
                } else {
                    Ok(rec.entry_or_insert_with(*sym, Value::record))
                }
            }
            CSeg::Index(i) => match cur {
                Value::List(items) => items.get_mut(*i).ok_or_else(|| {
                    DocumentError::PathNotFound { path: self.display(p).to_string() }
                }),
                other => Err(type_mismatch("list", other, self.display(p).to_string())),
            },
        }
    }

    fn as_record_mut<'v>(
        &self,
        v: &'v mut Value,
        p: PathId,
    ) -> std::result::Result<&'v mut b2b_document::FieldVec, DocumentError> {
        match v {
            Value::Record(fields) => Ok(fields),
            other => Err(type_mismatch("record", other, self.display(p).to_string())),
        }
    }

    /// In-place `Append`: walks to the target once and pushes, where the
    /// interpreter looks up, removes, rebuilds, and re-inserts the list.
    /// Error cases (non-list target, bad intermediate, out-of-range index)
    /// produce byte-identical messages, and partially created intermediate
    /// records match the interpreter's side effects.
    fn append(&self, to: PathId, target: &mut Value, element: Value, rule: StrId) -> Result<()> {
        let known = self.paths[to as usize].known;
        let segs = self.path_segs(to);
        let (last, init) = segs.split_last().expect("compiled paths are never empty");
        let mut cur = target;
        for (j, seg) in init.iter().enumerate() {
            cur = self
                .step_mut(cur, seg, to, (j as u32) < known)
                .map_err(|e| self.rule_err(rule, e.to_string()))?;
        }
        let slot = match last {
            CSeg::Field(sym) => {
                let rec =
                    self.as_record_mut(cur, to).map_err(|e| self.rule_err(rule, e.to_string()))?;
                if segs.len() as u32 <= known {
                    rec.get_sym_mut(*sym).expect("presence analysis guarantees this key")
                } else {
                    rec.entry_or_insert_with(*sym, || Value::List(Vec::new()))
                }
            }
            CSeg::Index(i) => match cur {
                Value::List(items) => items.get_mut(*i).ok_or_else(|| {
                    let e = DocumentError::PathNotFound { path: self.display(to).to_string() };
                    self.rule_err(rule, e.to_string())
                })?,
                other => {
                    let e = type_mismatch("list", other, self.display(to).to_string());
                    return Err(self.rule_err(rule, e.to_string()));
                }
            },
        };
        match slot {
            Value::List(items) => {
                items.push(element);
                Ok(())
            }
            other => Err(self.rule_err(
                rule,
                format!("target `{}` is {}, not a list", self.display(to), other.type_name()),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Error plumbing: reproduce the interpreter's messages exactly.

    fn rule_err(&self, rule: StrId, reason: String) -> TransformError {
        TransformError::Rule {
            program: self.id.to_string(),
            rule: self.strings[rule as usize].to_string(),
            reason,
        }
    }

    fn mismatch_err(
        &self,
        expected: &'static str,
        found: &Value,
        p: PathId,
        rule: StrId,
    ) -> TransformError {
        self.rule_err(rule, type_mismatch(expected, found, self.display(p).to_string()).to_string())
    }

    fn lookup_required<'v>(&self, p: PathId, source: &'v Value, rule: StrId) -> Result<&'v Value> {
        self.lookup(p, source).ok_or_else(|| {
            self.rule_err(rule, format!("source path `{}` not found", self.display(p)))
        })
    }

    fn set_or_rule_err(
        &self,
        p: PathId,
        target: &mut Value,
        value: Value,
        rule: StrId,
    ) -> Result<()> {
        self.set(p, target, value).map_err(|e| self.rule_err(rule, e.to_string()))
    }

    fn as_text<'v>(&self, v: &'v Value, p: PathId, rule: StrId) -> Result<&'v str> {
        match v {
            Value::Text(s) => Ok(s),
            other => Err(self.mismatch_err("text", other, p, rule)),
        }
    }

    fn as_list<'v>(&self, v: &'v Value, p: PathId, rule: StrId) -> Result<&'v [Value]> {
        match v {
            Value::List(items) => Ok(items),
            other => Err(self.mismatch_err("list", other, p, rule)),
        }
    }

    fn as_money(&self, v: &Value, p: PathId, rule: StrId) -> Result<Money> {
        match v {
            Value::Money(m) => Ok(*m),
            other => Err(self.mismatch_err("money", other, p, rule)),
        }
    }
}

fn type_mismatch(expected: &'static str, found: &Value, at: String) -> DocumentError {
    DocumentError::TypeMismatch { expected, found: found.type_name(), at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::normalized::sample_po;
    use b2b_document::record;

    fn ctx() -> TransformContext {
        TransformContext::new("ACME", "GADGET", "000000007", "i-7")
    }

    fn program(rules: Vec<MappingRule>) -> TransformProgram {
        TransformProgram::new(
            DocKind::PurchaseOrder,
            FormatId::NORMALIZED,
            FormatId::custom("flat"),
            rules,
        )
    }

    /// Interpreted and compiled agree — documents and errors both.
    fn assert_equivalent(p: &TransformProgram, doc: &Document) {
        let compiled = CompiledProgram::compile(p);
        let a = p.apply(doc, &ctx());
        let b = compiled.apply(doc, &ctx());
        match (&a, &b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.body(), y.body());
                assert_eq!(x.format(), y.format());
                assert_eq!(x.kind(), y.kind());
            }
            _ => assert_eq!(a, b),
        }
    }

    #[test]
    fn builtins_compile_and_match_the_interpreter() {
        let reg = crate::builtin::all_builtins();
        let po = sample_po("4711", 25);
        for p in &reg {
            let compiled = CompiledProgram::compile(p);
            assert_eq!(compiled.id(), p.id());
            assert!(compiled.op_count() >= p.rules().len());
            if p.source_format() == &FormatId::NORMALIZED && p.kind() == DocKind::PurchaseOrder {
                assert_equivalent(p, &po);
            }
        }
    }

    #[test]
    fn round_trip_through_compiled_edi_matches_interpreter() {
        let reg = crate::registry::TransformRegistry::with_builtins();
        let po = sample_po("88", 3);
        let out = reg.program(&FormatId::NORMALIZED, &FormatId::EDI_X12, DocKind::PurchaseOrder);
        let back = reg.program(&FormatId::EDI_X12, &FormatId::NORMALIZED, DocKind::PurchaseOrder);
        let (out, back) = (out.unwrap(), back.unwrap());
        let c_out = CompiledProgram::compile(out);
        let c_back = CompiledProgram::compile(back);
        let i = back.apply(&out.apply(&po, &ctx()).unwrap(), &ctx()).unwrap();
        let c = c_back.apply(&c_out.apply(&po, &ctx()).unwrap(), &ctx()).unwrap();
        assert_eq!(i.body(), c.body());
    }

    #[test]
    fn errors_are_byte_identical() {
        let po = sample_po("9", 2);
        let cases = vec![
            // Missing required source.
            program(vec![MappingRule::mv("header.missing_field", "x")]),
            // ValueMap over a non-text source.
            program(vec![MappingRule::value_map("lines", "x", &[("a", "b")])]),
            // ValueMap with an unknown code.
            program(vec![MappingRule::value_map("header.currency", "x", &[("XXX", "?")])]),
            // ForEach over a non-list.
            program(vec![MappingRule::for_each("header", "x", vec![])]),
            // Pick with no match.
            program(vec![MappingRule::pick("lines", "item", "nope", "item", "x")]),
            // SumMoney over an empty path.
            program(vec![MappingRule::sum_money("header.missing", "ext", "x")]),
            // SumMoney item lacking the field.
            program(vec![MappingRule::sum_money("lines", "missing_money", "x")]),
            // Append onto a non-list.
            program(vec![
                MappingRule::const_text("n1", "oops"),
                MappingRule::append("n1", vec![MappingRule::const_text("code", "BY")]),
            ]),
            // Set through a non-record intermediate.
            program(vec![
                MappingRule::const_text("a", "leaf"),
                MappingRule::const_text("a.b", "deeper"),
            ]),
        ];
        for p in &cases {
            assert_equivalent(p, &po);
        }
    }

    /// Regression: an optional move is lowered with `writes = false`, but it
    /// still replaces the target subtree whenever its source exists. Presence
    /// facts proven by earlier ops must not survive it, or the known fast
    /// path in `step_mut` panics where the interpreter succeeds.
    #[test]
    fn optional_move_overwrite_invalidates_presence_analysis() {
        let po = sample_po("1", 5);
        // Source exists: `x` is replaced by the header record (no `y` key).
        let overwrites = program(vec![
            MappingRule::const_text("x.y.z", "first"),
            MappingRule::mv_opt("header", "x"),
            MappingRule::const_text("x.y.z", "second"),
        ]);
        assert_equivalent(&overwrites, &po);
        // Source missing: nothing is written; the conservative invalidation
        // only costs the fast path, never correctness.
        let skips = program(vec![
            MappingRule::const_text("x.y.z", "first"),
            MappingRule::mv_opt("header.missing", "x"),
            MappingRule::const_text("x.y.z", "second"),
        ]);
        assert_equivalent(&skips, &po);
    }

    #[test]
    fn append_and_nested_for_each_flatten_correctly() {
        let source = record! {
            "buyer" => Value::text("B"),
            "seller" => Value::text("S"),
            "lines" => Value::List(vec![
                record! { "q" => Value::Int(1) },
                record! { "q" => Value::Int(2) },
            ]),
        };
        let doc = Document::new(
            DocKind::PurchaseOrder,
            FormatId::NORMALIZED,
            b2b_document::CorrelationId::new("c-1"),
            source,
        );
        let p = program(vec![
            MappingRule::append(
                "n1",
                vec![MappingRule::const_text("code", "BY"), MappingRule::mv("buyer", "name")],
            ),
            MappingRule::append(
                "n1",
                vec![MappingRule::const_text("code", "SE"), MappingRule::mv("seller", "name")],
            ),
            MappingRule::for_each("lines", "items", vec![MappingRule::mv("q", "qty")]),
            MappingRule::context("env.sender", ContextKey::Sender),
        ]);
        assert_equivalent(&p, &doc);
        let out = CompiledProgram::compile(&p).apply(&doc, &ctx()).unwrap();
        let n1 = out.get("n1").unwrap().as_list("n1").unwrap();
        assert_eq!(n1.len(), 2);
        assert_eq!(out.get("items[1].qty").unwrap(), &Value::Int(2));
    }
}
