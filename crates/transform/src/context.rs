//! Context values a binding supplies to a transformation.
//!
//! Partner-format envelopes carry information that does not exist in the
//! normalized document — interchange sender/receiver ids, control numbers,
//! PIP instance ids. The binding knows these (it knows which agreement the
//! message travels under), so it passes them alongside the document.

use serde::{Deserialize, Serialize};

/// Envelope-level values injected by `MappingRule::Context`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformContext {
    /// Wire-level sender identity.
    pub sender: String,
    /// Wire-level receiver identity.
    pub receiver: String,
    /// Interchange / group control number.
    pub control_number: String,
    /// Protocol instance id (PIP instance, BOD reference id).
    pub instance_id: String,
}

/// Which context value a `Context` rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextKey {
    /// [`TransformContext::sender`].
    Sender,
    /// [`TransformContext::receiver`].
    Receiver,
    /// [`TransformContext::control_number`].
    ControlNumber,
    /// [`TransformContext::instance_id`].
    InstanceId,
}

impl TransformContext {
    /// Builds a context.
    pub fn new(sender: &str, receiver: &str, control_number: &str, instance_id: &str) -> Self {
        Self {
            sender: sender.to_string(),
            receiver: receiver.to_string(),
            control_number: control_number.to_string(),
            instance_id: instance_id.to_string(),
        }
    }

    /// Resolves a key.
    pub fn get(&self, key: ContextKey) -> &str {
        match key {
            ContextKey::Sender => &self.sender,
            ContextKey::Receiver => &self.receiver,
            ContextKey::ControlNumber => &self.control_number,
            ContextKey::InstanceId => &self.instance_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_resolve() {
        let ctx = TransformContext::new("ACME", "GADGET", "007", "pip-1");
        assert_eq!(ctx.get(ContextKey::Sender), "ACME");
        assert_eq!(ctx.get(ContextKey::Receiver), "GADGET");
        assert_eq!(ctx.get(ContextKey::ControlNumber), "007");
        assert_eq!(ctx.get(ContextKey::InstanceId), "pip-1");
    }
}
