//! Error type for the transformation engine.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TransformError>;

/// Errors raised while building or applying transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// A mapping rule failed against the source document.
    Rule { program: String, rule: String, reason: String },
    /// No program registered for the requested conversion.
    NoProgram { source: String, target: String, kind: String },
    /// The document handed in does not match the program's source format
    /// or kind.
    WrongInput { program: String, reason: String },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rule { program, rule, reason } => {
                write!(f, "transform `{program}`, rule `{rule}`: {reason}")
            }
            Self::NoProgram { source, target, kind } => {
                write!(f, "no transformation registered for {kind}: {source} -> {target}")
            }
            Self::WrongInput { program, reason } => {
                write!(f, "transform `{program}` rejected its input: {reason}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_program_and_rule() {
        let e = TransformError::Rule {
            program: "edi-to-normalized-po".into(),
            rule: "move beg.po_number".into(),
            reason: "path not found".into(),
        };
        assert!(e.to_string().contains("edi-to-normalized-po"));
        assert!(e.to_string().contains("beg.po_number"));
    }
}
