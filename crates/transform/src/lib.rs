//! Document transformation engine (the binding's "Transform to …" steps).
//!
//! Section 4.2 of the paper places *all* format transformations inside
//! bindings, between public processes (partner formats) and private
//! processes (the normalized format). This crate provides:
//!
//! * [`mapping`] — a declarative mapping language (field moves, constants,
//!   code-value maps, per-line iteration, list construction, context
//!   injection, currency extraction, money aggregation),
//! * [`program`] — transformation programs: an ordered rule list between a
//!   (source format, target format, document kind) triple,
//! * [`compiled`] — programs lowered to a flat instruction stream with
//!   pre-resolved, interned field paths (the hot path bindings actually
//!   execute; observably identical to the rule-tree interpreter),
//! * [`registry`] — the transformation registry bindings resolve against,
//!   compiling programs lazily on first dispatch,
//! * [`builtin`] — the twenty concrete programs mapping EDI, RosettaNet,
//!   OAGIS, SAP, and Oracle shapes to and from the normalized format.
//!
//! Transformations intentionally drop fields the target shape cannot
//! express (e.g. EDI 850 as modeled here has no note field); DESIGN.md
//! documents this as the paper's "domain expert defines the mapping"
//! reality. Round-trip tests pin down exactly which fields survive.

pub mod builtin;
pub mod compiled;
pub mod context;
pub mod error;
pub mod mapping;
pub mod program;
pub mod registry;

pub use compiled::CompiledProgram;
pub use context::{ContextKey, TransformContext};
pub use error::{Result, TransformError};
pub use mapping::MappingRule;
pub use program::{TransformId, TransformProgram};
pub use registry::TransformRegistry;
