//! The declarative mapping language.

use crate::context::{ContextKey, TransformContext};
use crate::error::{Result, TransformError};
use b2b_document::{FieldPath, Money, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One mapping rule. Rules run in order against a source value tree and
/// write into a target tree that starts empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MappingRule {
    /// Copies the value at `from` to `to`. When `optional`, a missing
    /// source is skipped silently; otherwise it is an error.
    Move {
        /// Source path.
        from: FieldPath,
        /// Target path.
        to: FieldPath,
        /// Skip silently when the source is missing.
        optional: bool,
    },
    /// Writes a constant.
    Const {
        /// Target path.
        to: FieldPath,
        /// The constant.
        value: Value,
    },
    /// Translates a text code through a lookup table (e.g. normalized
    /// `accepted` ↔ EDI `IA`).
    ValueMap {
        /// Source path (must hold text).
        from: FieldPath,
        /// Target path.
        to: FieldPath,
        /// Code table.
        map: BTreeMap<String, String>,
        /// Fallback when the source code is not in the table; `None` makes
        /// unknown codes an error.
        default: Option<String>,
    },
    /// Maps every element of the source list into a new element of the
    /// target list, applying `rules` with paths relative to the elements.
    ForEach {
        /// Source list path.
        from: FieldPath,
        /// Target list path.
        to: FieldPath,
        /// Per-element rules.
        rules: Vec<MappingRule>,
    },
    /// Selects the element of a source list whose `match_field` equals
    /// `equals`, then copies its `take` field to `to` (e.g. pick the N1
    /// segment with code `BY` and take its name).
    Pick {
        /// Source list path.
        from: FieldPath,
        /// Field inside each element to match on.
        match_field: String,
        /// Value it must equal.
        equals: String,
        /// Field inside the matching element to copy.
        take: String,
        /// Target path.
        to: FieldPath,
    },
    /// Appends one record to the target list at `to`, built by `rules`
    /// evaluated against the *source root* (used to construct N1-style
    /// party lists from flat header fields).
    Append {
        /// Target list path.
        to: FieldPath,
        /// Rules building the appended record.
        rules: Vec<MappingRule>,
    },
    /// Injects a context value (sender, receiver, control number, …).
    Context {
        /// Target path.
        to: FieldPath,
        /// Which context value.
        key: ContextKey,
    },
    /// Writes the currency code (text) of the money value at `from`.
    CurrencyOf {
        /// Source money path.
        from: FieldPath,
        /// Target path.
        to: FieldPath,
    },
    /// Sums `field` (money) over the list at `over` and writes the total.
    SumMoney {
        /// Source list path.
        over: FieldPath,
        /// Money field inside each element.
        field: String,
        /// Target path.
        to: FieldPath,
    },
}

impl MappingRule {
    /// Required move.
    pub fn mv(from: &str, to: &str) -> Self {
        Self::Move { from: path(from), to: path(to), optional: false }
    }

    /// Optional move.
    pub fn mv_opt(from: &str, to: &str) -> Self {
        Self::Move { from: path(from), to: path(to), optional: true }
    }

    /// Constant text.
    pub fn const_text(to: &str, text: &str) -> Self {
        Self::Const { to: path(to), value: Value::text(text) }
    }

    /// Code table translation.
    pub fn value_map(from: &str, to: &str, pairs: &[(&str, &str)]) -> Self {
        Self::ValueMap {
            from: path(from),
            to: path(to),
            map: pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            default: None,
        }
    }

    /// Per-element iteration.
    pub fn for_each(from: &str, to: &str, rules: Vec<MappingRule>) -> Self {
        Self::ForEach { from: path(from), to: path(to), rules }
    }

    /// List element selection.
    pub fn pick(from: &str, match_field: &str, equals: &str, take: &str, to: &str) -> Self {
        Self::Pick {
            from: path(from),
            match_field: match_field.to_string(),
            equals: equals.to_string(),
            take: take.to_string(),
            to: path(to),
        }
    }

    /// List element construction.
    pub fn append(to: &str, rules: Vec<MappingRule>) -> Self {
        Self::Append { to: path(to), rules }
    }

    /// Context injection.
    pub fn context(to: &str, key: ContextKey) -> Self {
        Self::Context { to: path(to), key }
    }

    /// Currency extraction.
    pub fn currency_of(from: &str, to: &str) -> Self {
        Self::CurrencyOf { from: path(from), to: path(to) }
    }

    /// Money aggregation.
    pub fn sum_money(over: &str, field: &str, to: &str) -> Self {
        Self::SumMoney { over: path(over), field: field.to_string(), to: path(to) }
    }

    /// Short description used in error messages and metrics.
    pub fn describe(&self) -> String {
        match self {
            Self::Move { from, to, .. } => format!("move {from} -> {to}"),
            Self::Const { to, .. } => format!("const -> {to}"),
            Self::ValueMap { from, to, .. } => format!("value-map {from} -> {to}"),
            Self::ForEach { from, to, .. } => format!("for-each {from} -> {to}"),
            Self::Pick { from, to, .. } => format!("pick {from} -> {to}"),
            Self::Append { to, .. } => format!("append -> {to}"),
            Self::Context { to, .. } => format!("context -> {to}"),
            Self::CurrencyOf { from, to } => format!("currency-of {from} -> {to}"),
            Self::SumMoney { over, to, .. } => format!("sum-money {over} -> {to}"),
        }
    }

    /// Applies the rule.
    pub fn apply(
        &self,
        program: &str,
        source: &Value,
        target: &mut Value,
        ctx: &TransformContext,
    ) -> Result<()> {
        let err = |reason: String| TransformError::Rule {
            program: program.to_string(),
            rule: self.describe(),
            reason,
        };
        match self {
            Self::Move { from, to, optional } => match from.lookup(source) {
                Some(v) => to.set(target, v.clone()).map_err(|e| err(e.to_string())),
                None if *optional => Ok(()),
                None => Err(err(format!("source path `{from}` not found"))),
            },
            Self::Const { to, value } => {
                to.set(target, value.clone()).map_err(|e| err(e.to_string()))
            }
            Self::ValueMap { from, to, map, default } => {
                let v = from
                    .lookup(source)
                    .ok_or_else(|| err(format!("source path `{from}` not found")))?;
                let code = v.as_text(&from.to_string()).map_err(|e| err(e.to_string()))?;
                let mapped = match map.get(code) {
                    Some(m) => m.clone(),
                    None => default
                        .clone()
                        .ok_or_else(|| err(format!("code `{code}` not in value map")))?,
                };
                to.set(target, Value::Text(mapped.into())).map_err(|e| err(e.to_string()))
            }
            Self::ForEach { from, to, rules } => {
                let items = from
                    .lookup(source)
                    .ok_or_else(|| err(format!("source path `{from}` not found")))?
                    .as_list(&from.to_string())
                    .map_err(|e| err(e.to_string()))?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    let mut element = Value::record();
                    for rule in rules {
                        rule.apply(program, item, &mut element, ctx)?;
                    }
                    out.push(element);
                }
                to.set(target, Value::List(out)).map_err(|e| err(e.to_string()))
            }
            Self::Pick { from, match_field, equals, take, to } => {
                let items = from
                    .lookup(source)
                    .ok_or_else(|| err(format!("source path `{from}` not found")))?
                    .as_list(&from.to_string())
                    .map_err(|e| err(e.to_string()))?;
                for item in items {
                    let rec = item.as_record(&from.to_string()).map_err(|e| err(e.to_string()))?;
                    if let Some(Value::Text(code)) = rec.get(match_field) {
                        if code == equals {
                            let taken = rec.get(take).ok_or_else(|| {
                                err(format!("matched element has no field `{take}`"))
                            })?;
                            return to.set(target, taken.clone()).map_err(|e| err(e.to_string()));
                        }
                    }
                }
                Err(err(format!("no element with {match_field} == `{equals}`")))
            }
            Self::Append { to, rules } => {
                let mut element = Value::record();
                for rule in rules {
                    rule.apply(program, source, &mut element, ctx)?;
                }
                match to.lookup(target) {
                    Some(Value::List(_)) => {}
                    Some(other) => {
                        return Err(err(format!(
                            "target `{to}` is {}, not a list",
                            other.type_name()
                        )))
                    }
                    None => {
                        to.set(target, Value::List(Vec::new())).map_err(|e| err(e.to_string()))?
                    }
                }
                // Re-borrow mutably and push.
                let list = match to.lookup(target) {
                    Some(Value::List(items)) => items.len(),
                    _ => unreachable!("just ensured a list"),
                };
                let idx_path = FieldPath::parse(&format!("{to}[{list}]"));
                // Indexing one past the end is not supported by set(), so
                // rebuild the list instead.
                drop(idx_path);
                if let Some(Value::List(items)) = remove_at(target, to) {
                    let mut items = items;
                    items.push(element);
                    to.set(target, Value::List(items)).map_err(|e| err(e.to_string()))?;
                }
                Ok(())
            }
            Self::Context { to, key } => {
                to.set(target, Value::text(ctx.get(*key))).map_err(|e| err(e.to_string()))
            }
            Self::CurrencyOf { from, to } => {
                let v = from
                    .lookup(source)
                    .ok_or_else(|| err(format!("source path `{from}` not found")))?;
                let money = v.as_money(&from.to_string()).map_err(|e| err(e.to_string()))?;
                to.set(target, Value::text(money.currency().code())).map_err(|e| err(e.to_string()))
            }
            Self::SumMoney { over, field, to } => {
                let items = over
                    .lookup(source)
                    .ok_or_else(|| err(format!("source path `{over}` not found")))?
                    .as_list(&over.to_string())
                    .map_err(|e| err(e.to_string()))?;
                let mut sum: Option<Money> = None;
                for (i, item) in items.iter().enumerate() {
                    let at = format!("{over}[{i}]");
                    let rec = item.as_record(&at).map_err(|e| err(e.to_string()))?;
                    let m = rec
                        .get(field)
                        .ok_or_else(|| err(format!("{at} has no field `{field}`")))?
                        .as_money(&at)
                        .map_err(|e| err(e.to_string()))?;
                    sum = Some(match sum {
                        None => m,
                        Some(acc) => acc.checked_add(m).map_err(|e| err(e.to_string()))?,
                    });
                }
                let total = sum.ok_or_else(|| err("cannot sum an empty list".into()))?;
                to.set(target, Value::Money(total)).map_err(|e| err(e.to_string()))
            }
        }
    }
}

fn remove_at(target: &mut Value, at: &FieldPath) -> Option<Value> {
    at.remove(target).ok().flatten()
}

fn path(text: &str) -> FieldPath {
    FieldPath::parse(text).expect("builder paths are static and valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::{record, Currency};

    fn ctx() -> TransformContext {
        TransformContext::new("A", "B", "7", "i-1")
    }

    fn apply(rule: MappingRule, source: &Value) -> Result<Value> {
        let mut target = Value::record();
        rule.apply("test", source, &mut target, &ctx())?;
        Ok(target)
    }

    #[test]
    fn move_copies_and_reports_missing() {
        let source = record! { "a" => record! { "b" => Value::Int(5) } };
        let out = apply(MappingRule::mv("a.b", "x.y"), &source).unwrap();
        assert_eq!(out, record! { "x" => record! { "y" => Value::Int(5) } });
        assert!(apply(MappingRule::mv("a.z", "x"), &source).is_err());
        assert_eq!(apply(MappingRule::mv_opt("a.z", "x"), &source).unwrap(), Value::record());
    }

    #[test]
    fn value_map_translates_codes() {
        let source = record! { "status" => Value::text("accepted") };
        let rule =
            MappingRule::value_map("status", "code", &[("accepted", "IA"), ("rejected", "IR")]);
        assert_eq!(apply(rule, &source).unwrap(), record! { "code" => Value::text("IA") });
        let unknown = record! { "status" => Value::text("weird") };
        let rule = MappingRule::value_map("status", "code", &[("accepted", "IA")]);
        assert!(apply(rule, &unknown).is_err());
    }

    #[test]
    fn for_each_maps_lines() {
        let source = record! {
            "lines" => Value::List(vec![
                record! { "q" => Value::Int(1) },
                record! { "q" => Value::Int(2) },
            ]),
        };
        let rule = MappingRule::for_each("lines", "items", vec![MappingRule::mv("q", "qty")]);
        let out = apply(rule, &source).unwrap();
        assert_eq!(
            out,
            record! { "items" => Value::List(vec![
                record! { "qty" => Value::Int(1) },
                record! { "qty" => Value::Int(2) },
            ]) }
        );
    }

    #[test]
    fn pick_selects_by_code() {
        let source = record! {
            "n1" => Value::List(vec![
                record! { "code" => Value::text("BY"), "name" => Value::text("Buyer Inc") },
                record! { "code" => Value::text("SE"), "name" => Value::text("Seller Inc") },
            ]),
        };
        let out = apply(MappingRule::pick("n1", "code", "SE", "name", "seller"), &source).unwrap();
        assert_eq!(out, record! { "seller" => Value::text("Seller Inc") });
        assert!(apply(MappingRule::pick("n1", "code", "XX", "name", "x"), &source).is_err());
    }

    #[test]
    fn append_builds_party_lists() {
        let source = record! { "buyer" => Value::text("B"), "seller" => Value::text("S") };
        let mut target = Value::record();
        for (code, from) in [("BY", "buyer"), ("SE", "seller")] {
            MappingRule::append(
                "n1",
                vec![MappingRule::const_text("code", code), MappingRule::mv(from, "name")],
            )
            .apply("test", &source, &mut target, &ctx())
            .unwrap();
        }
        let n1 = FieldPath::parse("n1").unwrap();
        let items = n1.get(&target).unwrap().as_list("n1").unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1], record! { "code" => Value::text("SE"), "name" => Value::text("S") });
    }

    #[test]
    fn context_currency_and_sum() {
        let m = |u| Value::Money(Money::from_units(u, Currency::Usd));
        let source = record! {
            "lines" => Value::List(vec![
                record! { "ext" => m(10) },
                record! { "ext" => m(32) },
            ]),
            "amount" => m(42),
        };
        let mut target = Value::record();
        MappingRule::context("env.sender", ContextKey::Sender)
            .apply("t", &source, &mut target, &ctx())
            .unwrap();
        MappingRule::currency_of("amount", "cur").apply("t", &source, &mut target, &ctx()).unwrap();
        MappingRule::sum_money("lines", "ext", "total")
            .apply("t", &source, &mut target, &ctx())
            .unwrap();
        assert_eq!(
            FieldPath::parse("env.sender").unwrap().get(&target).unwrap(),
            &Value::text("A")
        );
        assert_eq!(FieldPath::parse("cur").unwrap().get(&target).unwrap(), &Value::text("USD"));
        assert_eq!(FieldPath::parse("total").unwrap().get(&target).unwrap(), &m(42));
    }

    #[test]
    fn sum_money_rejects_empty_list() {
        let source = record! { "lines" => Value::List(vec![]) };
        assert!(apply(MappingRule::sum_money("lines", "ext", "total"), &source).is_err());
    }
}
