//! Transformation programs.

use crate::context::TransformContext;
use crate::error::{Result, TransformError};
use crate::mapping::MappingRule;
use b2b_document::{DocKind, Document, FormatId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a transformation program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TransformId(String);

impl TransformId {
    /// Conventional id: `<kind>:<source>-><target>`.
    pub fn conventional(kind: DocKind, source: &FormatId, target: &FormatId) -> Self {
        Self(format!("{kind}:{source}->{target}"))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TransformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An ordered list of mapping rules converting documents of one kind
/// between two formats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformProgram {
    id: TransformId,
    kind: DocKind,
    source_format: FormatId,
    target_format: FormatId,
    rules: Vec<MappingRule>,
}

impl TransformProgram {
    /// Builds a program with the conventional id.
    pub fn new(
        kind: DocKind,
        source_format: FormatId,
        target_format: FormatId,
        rules: Vec<MappingRule>,
    ) -> Self {
        Self {
            id: TransformId::conventional(kind, &source_format, &target_format),
            kind,
            source_format,
            target_format,
            rules,
        }
    }

    /// Program id.
    pub fn id(&self) -> &TransformId {
        &self.id
    }

    /// Document kind handled.
    pub fn kind(&self) -> DocKind {
        self.kind
    }

    /// Source format.
    pub fn source_format(&self) -> &FormatId {
        &self.source_format
    }

    /// Target format.
    pub fn target_format(&self) -> &FormatId {
        &self.target_format
    }

    /// The mapping rules.
    pub fn rules(&self) -> &[MappingRule] {
        &self.rules
    }

    /// Number of rules (model-size metrics).
    pub fn rule_count(&self) -> usize {
        fn count(rules: &[MappingRule]) -> usize {
            rules
                .iter()
                .map(|r| match r {
                    MappingRule::ForEach { rules, .. } | MappingRule::Append { rules, .. } => {
                        1 + count(rules)
                    }
                    _ => 1,
                })
                .sum()
        }
        count(&self.rules)
    }

    /// Applies the program: builds a fresh body in the target shape and
    /// returns the document re-tagged with the target format. Identity,
    /// correlation, and kind are preserved.
    pub fn apply(&self, doc: &Document, ctx: &TransformContext) -> Result<Document> {
        if doc.format() != &self.source_format {
            return Err(TransformError::WrongInput {
                program: self.id.to_string(),
                reason: format!("expected format {}, got {}", self.source_format, doc.format()),
            });
        }
        if doc.kind() != self.kind {
            return Err(TransformError::WrongInput {
                program: self.id.to_string(),
                reason: format!("expected kind {}, got {}", self.kind, doc.kind()),
            });
        }
        let mut target = Value::record();
        for rule in &self.rules {
            rule.apply(self.id.as_str(), doc.body(), &mut target, ctx)?;
        }
        Ok(doc.reformatted(self.target_format.clone(), target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::normalized::sample_po;

    #[test]
    fn apply_checks_input_format_and_kind() {
        let program = TransformProgram::new(
            DocKind::PurchaseOrder,
            FormatId::EDI_X12,
            FormatId::NORMALIZED,
            vec![],
        );
        let doc = sample_po("1", 10);
        match program.apply(&doc, &TransformContext::default()) {
            Err(TransformError::WrongInput { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn apply_retags_and_preserves_identity() {
        let program = TransformProgram::new(
            DocKind::PurchaseOrder,
            FormatId::NORMALIZED,
            FormatId::custom("flat"),
            vec![MappingRule::mv("header.po_number", "po")],
        );
        let doc = sample_po("4711", 10);
        let out = program.apply(&doc, &TransformContext::default()).unwrap();
        assert_eq!(out.format(), &FormatId::custom("flat"));
        assert_eq!(out.id(), doc.id());
        assert_eq!(out.correlation(), doc.correlation());
        assert_eq!(out.get("po").unwrap(), doc.get("header.po_number").unwrap());
    }

    #[test]
    fn rule_count_descends_into_nesting() {
        let program = TransformProgram::new(
            DocKind::PurchaseOrder,
            FormatId::NORMALIZED,
            FormatId::custom("x"),
            vec![
                MappingRule::mv("a", "b"),
                MappingRule::for_each("lines", "items", vec![MappingRule::mv("q", "qty")]),
            ],
        );
        assert_eq!(program.rule_count(), 3);
    }

    #[test]
    fn conventional_ids_are_stable() {
        let id = TransformId::conventional(
            DocKind::PurchaseOrder,
            &FormatId::EDI_X12,
            &FormatId::NORMALIZED,
        );
        assert_eq!(id.as_str(), "purchase-order:edi-x12->normalized");
    }
}
