//! The transformation registry bindings resolve against.

use crate::context::TransformContext;
use crate::error::{Result, TransformError};
use crate::program::TransformProgram;
use b2b_document::{DocKind, Document, FormatId};
use std::collections::BTreeMap;

/// Registry of transformation programs keyed by
/// (source format, target format, document kind).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransformRegistry {
    programs: BTreeMap<(FormatId, FormatId, DocKind), TransformProgram>,
}

impl TransformRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with all built-in programs (every wire and
    /// back-end format to and from the normalized format).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        for program in crate::builtin::all_builtins() {
            reg.register(program);
        }
        reg
    }

    /// Registers (or replaces) a program.
    pub fn register(&mut self, program: TransformProgram) {
        self.programs.insert(
            (program.source_format().clone(), program.target_format().clone(), program.kind()),
            program,
        );
    }

    /// Looks up the program for a conversion.
    pub fn program(
        &self,
        source: &FormatId,
        target: &FormatId,
        kind: DocKind,
    ) -> Result<&TransformProgram> {
        self.programs.get(&(source.clone(), target.clone(), kind)).ok_or_else(|| {
            TransformError::NoProgram {
                source: source.to_string(),
                target: target.to_string(),
                kind: kind.to_string(),
            }
        })
    }

    /// Transforms a document into `target` format, dispatching on the
    /// document's own format and kind.
    pub fn transform(
        &self,
        doc: &Document,
        target: &FormatId,
        ctx: &TransformContext,
    ) -> Result<Document> {
        self.program(doc.format(), target, doc.kind())?.apply(doc, ctx)
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Total rule count across programs (model-size metrics).
    pub fn total_rule_count(&self) -> usize {
        self.programs.values().map(TransformProgram::rule_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::formats::sample_edi_po;

    #[test]
    fn builtins_cover_all_format_pairs() {
        let reg = TransformRegistry::with_builtins();
        let wire_formats = [
            FormatId::EDI_X12,
            FormatId::ROSETTANET,
            FormatId::OAGIS,
            FormatId::SAP_IDOC,
            FormatId::ORACLE_APPS,
        ];
        for f in &wire_formats {
            for kind in [DocKind::PurchaseOrder, DocKind::PurchaseOrderAck] {
                assert!(reg.program(f, &FormatId::NORMALIZED, kind).is_ok(), "{f} -> norm {kind}");
                assert!(reg.program(&FormatId::NORMALIZED, f, kind).is_ok(), "norm -> {f} {kind}");
            }
        }
        assert_eq!(reg.len(), 24);
    }

    #[test]
    fn missing_program_is_reported() {
        let reg = TransformRegistry::new();
        let doc = sample_edi_po("1", 5);
        match reg.transform(&doc, &FormatId::NORMALIZED, &TransformContext::default()) {
            Err(TransformError::NoProgram { source, .. }) => assert_eq!(source, "edi-x12"),
            other => panic!("{other:?}"),
        }
    }
}
