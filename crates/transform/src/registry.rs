//! The transformation registry bindings resolve against.

use crate::compiled::CompiledProgram;
use crate::context::TransformContext;
use crate::error::{Result, TransformError};
use crate::program::TransformProgram;
use b2b_document::{DocKind, Document, FormatId};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Owned registry key.
type Key = (FormatId, FormatId, DocKind);

/// Borrowed view of a registry key, so lookups never clone the two
/// `FormatId`s just to build a temporary key (they used to, once per
/// document). `BTreeMap::get` accepts any `Q` the owned key can `Borrow`;
/// a trait object over this view is such a `Q`, and both the owned key
/// and a tuple of references implement the view.
trait LookupKey {
    fn parts(&self) -> (&FormatId, &FormatId, DocKind);
}

impl LookupKey for Key {
    fn parts(&self) -> (&FormatId, &FormatId, DocKind) {
        (&self.0, &self.1, self.2)
    }
}

impl LookupKey for (&FormatId, &FormatId, DocKind) {
    fn parts(&self) -> (&FormatId, &FormatId, DocKind) {
        (self.0, self.1, self.2)
    }
}

impl<'a> Borrow<dyn LookupKey + 'a> for Key {
    fn borrow(&self) -> &(dyn LookupKey + 'a) {
        self
    }
}

impl PartialEq for dyn LookupKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.parts() == other.parts()
    }
}

impl Eq for dyn LookupKey + '_ {}

impl PartialOrd for dyn LookupKey + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for dyn LookupKey + '_ {
    fn cmp(&self, other: &Self) -> Ordering {
        self.parts().cmp(&other.parts())
    }
}

/// Registry of transformation programs keyed by
/// (source format, target format, document kind).
///
/// Dispatch runs compiled programs ([`CompiledProgram`]) by default,
/// lowering each program lazily on first use and caching the result;
/// [`set_interpreted`](Self::set_interpreted) switches back to the
/// rule-tree interpreter (the two are observably identical — the flag
/// exists so experiments can measure the difference).
#[derive(Debug, Default)]
pub struct TransformRegistry {
    programs: BTreeMap<Key, TransformProgram>,
    /// Lazily compiled programs, kept as a flat slice sorted by
    /// (kind, source, target) — the cheap `DocKind` discriminant decides
    /// most probes before any format string is compared, and dispatch is
    /// one binary search with no per-comparison indirection. Interior
    /// mutability keeps compilation an implementation detail of `&self`
    /// dispatch; a `RwLock` (not a `RefCell`) because the sharded execute
    /// stage shares the registry across worker threads. Compilation is
    /// deterministic, so which thread compiles first never changes the
    /// result.
    compiled: RwLock<Vec<(Key, Arc<CompiledProgram>)>>,
    interpret: bool,
}

/// Dispatch order of the compiled slice: kind first (one byte decides),
/// then the two format ids by content.
fn dispatch_cmp(key: &Key, source: &FormatId, target: &FormatId, kind: DocKind) -> Ordering {
    key.2
        .cmp(&kind)
        .then_with(|| key.0.as_str().cmp(source.as_str()))
        .then_with(|| key.1.as_str().cmp(target.as_str()))
}

impl Clone for TransformRegistry {
    fn clone(&self) -> Self {
        Self {
            programs: self.programs.clone(),
            compiled: RwLock::new(self.compiled_cache().clone()),
            interpret: self.interpret,
        }
    }
}

impl PartialEq for TransformRegistry {
    fn eq(&self, other: &Self) -> bool {
        // The compile cache is derived state; two registries with the same
        // programs are the same registry.
        self.programs == other.programs && self.interpret == other.interpret
    }
}

impl TransformRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with all built-in programs (every wire and
    /// back-end format to and from the normalized format).
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        for program in crate::builtin::all_builtins() {
            reg.register(program);
        }
        reg
    }

    /// Registers (or replaces) a program, invalidating its compiled form.
    pub fn register(&mut self, program: TransformProgram) {
        let key =
            (program.source_format().clone(), program.target_format().clone(), program.kind());
        let mut cache = self.compiled_cache_mut();
        if let Ok(i) = cache.binary_search_by(|(k, _)| dispatch_cmp(k, &key.0, &key.1, key.2)) {
            cache.remove(i);
        }
        drop(cache);
        self.programs.insert(key, program);
    }

    /// Switches dispatch between the compiled executor (default, `false`)
    /// and the rule-tree interpreter. Results are identical either way.
    pub fn set_interpreted(&mut self, interpret: bool) {
        self.interpret = interpret;
    }

    /// Whether dispatch currently interprets rule trees.
    pub fn is_interpreted(&self) -> bool {
        self.interpret
    }

    /// Looks up the program for a conversion (borrowed key: no clones).
    pub fn program(
        &self,
        source: &FormatId,
        target: &FormatId,
        kind: DocKind,
    ) -> Result<&TransformProgram> {
        self.programs.get(&(source, target, kind) as &dyn LookupKey).ok_or_else(|| {
            TransformError::NoProgram {
                source: source.to_string(),
                target: target.to_string(),
                kind: kind.to_string(),
            }
        })
    }

    /// The compiled form of a program, lowering it on first use.
    pub fn compiled(
        &self,
        source: &FormatId,
        target: &FormatId,
        kind: DocKind,
    ) -> Result<Arc<CompiledProgram>> {
        {
            let cache = self.compiled_cache();
            if let Ok(i) = cache.binary_search_by(|(k, _)| dispatch_cmp(k, source, target, kind)) {
                return Ok(cache[i].1.clone());
            }
        }
        let lowered = Arc::new(CompiledProgram::compile(self.program(source, target, kind)?));
        let mut cache = self.compiled_cache_mut();
        // Another thread may have compiled meanwhile; keep the first entry
        // (both are identical — compilation is deterministic).
        match cache.binary_search_by(|(k, _)| dispatch_cmp(k, source, target, kind)) {
            Ok(i) => Ok(cache[i].1.clone()),
            Err(i) => {
                cache.insert(i, ((source.clone(), target.clone(), kind), lowered.clone()));
                Ok(lowered)
            }
        }
    }

    /// Transforms a document into `target` format, dispatching on the
    /// document's own format and kind.
    pub fn transform(
        &self,
        doc: &Document,
        target: &FormatId,
        ctx: &TransformContext,
    ) -> Result<Document> {
        if self.interpret {
            return self.program(doc.format(), target, doc.kind())?.apply(doc, ctx);
        }
        // Steady-state dispatch: run the program while holding the read
        // guard — no `Arc` refcount traffic, no key clones. Writers only
        // appear on first-use compilation and re-registration.
        {
            let cache = self.compiled_cache();
            if let Ok(i) =
                cache.binary_search_by(|(k, _)| dispatch_cmp(k, doc.format(), target, doc.kind()))
            {
                return cache[i].1.apply(doc, ctx);
            }
        }
        self.compiled(doc.format(), target, doc.kind())?.apply(doc, ctx)
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Number of programs compiled so far (lazily populated).
    pub fn compiled_count(&self) -> usize {
        self.compiled_cache().len()
    }

    /// Total rule count across programs (model-size metrics).
    pub fn total_rule_count(&self) -> usize {
        self.programs.values().map(TransformProgram::rule_count).sum()
    }

    fn compiled_cache(&self) -> std::sync::RwLockReadGuard<'_, Vec<(Key, Arc<CompiledProgram>)>> {
        self.compiled.read().expect("transform compile cache poisoned")
    }

    fn compiled_cache_mut(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, Vec<(Key, Arc<CompiledProgram>)>> {
        self.compiled.write().expect("transform compile cache poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::formats::sample_edi_po;

    #[test]
    fn builtins_cover_all_format_pairs() {
        let reg = TransformRegistry::with_builtins();
        let wire_formats = [
            FormatId::EDI_X12,
            FormatId::ROSETTANET,
            FormatId::OAGIS,
            FormatId::SAP_IDOC,
            FormatId::ORACLE_APPS,
            FormatId::BINARY,
        ];
        for f in &wire_formats {
            for kind in [DocKind::PurchaseOrder, DocKind::PurchaseOrderAck] {
                assert!(reg.program(f, &FormatId::NORMALIZED, kind).is_ok(), "{f} -> norm {kind}");
                assert!(reg.program(&FormatId::NORMALIZED, f, kind).is_ok(), "norm -> {f} {kind}");
            }
        }
        for f in [FormatId::ROSETTANET, FormatId::BINARY] {
            for kind in [DocKind::RequestForQuote, DocKind::Quote] {
                assert!(reg.program(&f, &FormatId::NORMALIZED, kind).is_ok(), "{f} -> norm {kind}");
                assert!(reg.program(&FormatId::NORMALIZED, &f, kind).is_ok(), "norm -> {f} {kind}");
            }
        }
        assert_eq!(reg.len(), 32);
    }

    #[test]
    fn missing_program_is_reported() {
        let reg = TransformRegistry::new();
        let doc = sample_edi_po("1", 5);
        match reg.transform(&doc, &FormatId::NORMALIZED, &TransformContext::default()) {
            Err(TransformError::NoProgram { source, .. }) => assert_eq!(source, "edi-x12"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compilation_is_lazy_and_cached() {
        let reg = TransformRegistry::with_builtins();
        assert_eq!(reg.compiled_count(), 0, "nothing compiled before first use");
        let doc = sample_edi_po("2", 1);
        let ctx = TransformContext::default();
        reg.transform(&doc, &FormatId::NORMALIZED, &ctx).unwrap();
        assert_eq!(reg.compiled_count(), 1);
        reg.transform(&doc, &FormatId::NORMALIZED, &ctx).unwrap();
        assert_eq!(reg.compiled_count(), 1, "second dispatch reuses the cache");
        let a = reg
            .compiled(&FormatId::EDI_X12, &FormatId::NORMALIZED, DocKind::PurchaseOrder)
            .unwrap();
        let b = reg
            .compiled(&FormatId::EDI_X12, &FormatId::NORMALIZED, DocKind::PurchaseOrder)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache returns the same compiled program");
    }

    #[test]
    fn register_invalidates_the_compiled_form() {
        let mut reg = TransformRegistry::with_builtins();
        let doc = sample_edi_po("3", 1);
        let ctx = TransformContext::default();
        reg.transform(&doc, &FormatId::NORMALIZED, &ctx).unwrap();
        assert_eq!(reg.compiled_count(), 1);
        let program = reg
            .program(&FormatId::EDI_X12, &FormatId::NORMALIZED, DocKind::PurchaseOrder)
            .unwrap()
            .clone();
        reg.register(program);
        assert_eq!(reg.compiled_count(), 0, "re-registering drops the stale compilation");
    }

    #[test]
    fn interpreted_and_compiled_dispatch_agree() {
        let mut reg = TransformRegistry::with_builtins();
        let doc = sample_edi_po("4", 7);
        let ctx = TransformContext::new("A", "B", "000000001", "i-1");
        let compiled = reg.transform(&doc, &FormatId::NORMALIZED, &ctx).unwrap();
        reg.set_interpreted(true);
        let interpreted = reg.transform(&doc, &FormatId::NORMALIZED, &ctx).unwrap();
        assert_eq!(compiled.body(), interpreted.body());
        assert_eq!(compiled.format(), interpreted.format());
    }
}
