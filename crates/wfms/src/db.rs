//! The workflow database (Figure 4): workflow types plus instance states.

use crate::engine::instance::WorkflowInstance;
use crate::error::{Result, WfError};
use crate::model::{InstanceId, WorkflowType, WorkflowTypeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// In-memory workflow database with snapshot/restore.
///
/// The engine checks types in and out of here on every advancement (unless
/// the instance carries its type), reproducing the architecture the paper
/// describes: "the workflow engine retrieves the state of the workflow
/// instance in question, advances the workflow instance and stores the
/// advanced state … back into the database".
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowDatabase {
    types: BTreeMap<WorkflowTypeId, WorkflowType>,
    instances: BTreeMap<InstanceId, WorkflowInstance>,
    next_instance: u64,
}

impl WorkflowDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self { next_instance: 1, ..Self::default() }
    }

    /// Stores a workflow type (replaces same-id older versions).
    pub fn put_type(&mut self, wf: WorkflowType) {
        self.types.insert(wf.id().clone(), wf);
    }

    /// Whether a type is present (Figure 6, step ①).
    pub fn has_type(&self, id: &WorkflowTypeId) -> bool {
        self.types.contains_key(id)
    }

    /// Fetches a type.
    pub fn get_type(&self, id: &WorkflowTypeId) -> Result<&WorkflowType> {
        self.types.get(id).ok_or_else(|| WfError::UnknownType { workflow: id.to_string() })
    }

    /// All type ids (sorted).
    pub fn type_ids(&self) -> Vec<&WorkflowTypeId> {
        self.types.keys().collect()
    }

    /// Number of stored types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Allocates the next instance id.
    pub fn allocate_instance_id(&mut self) -> InstanceId {
        let id = InstanceId::new(self.next_instance);
        self.next_instance += 1;
        id
    }

    /// Inserts an instance.
    pub fn put_instance(&mut self, inst: WorkflowInstance) {
        self.instances.insert(inst.id, inst);
    }

    /// Removes an instance for in-engine state transition or migration.
    pub fn take_instance(&mut self, id: InstanceId) -> Result<WorkflowInstance> {
        self.instances.remove(&id).ok_or(WfError::UnknownInstance { instance: id.value() })
    }

    /// Reads an instance without removing it.
    pub fn get_instance(&self, id: InstanceId) -> Result<&WorkflowInstance> {
        self.instances.get(&id).ok_or(WfError::UnknownInstance { instance: id.value() })
    }

    /// Number of stored instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// All instance ids (sorted).
    pub fn instance_ids(&self) -> Vec<InstanceId> {
        self.instances.keys().copied().collect()
    }

    /// The full type map (read-only; shard workers share it by reference).
    pub(crate) fn types_map(&self) -> &BTreeMap<WorkflowTypeId, WorkflowType> {
        &self.types
    }

    /// Splits the database into disjoint borrows: shared types, mutable
    /// instances, and the mutable id counter. The execution layer needs
    /// all three at once (types are read by every step, instances are the
    /// per-shard mutable state, the counter gates spawns).
    pub(crate) fn split_mut(
        &mut self,
    ) -> (
        &BTreeMap<WorkflowTypeId, WorkflowType>,
        &mut BTreeMap<InstanceId, WorkflowInstance>,
        &mut u64,
    ) {
        (&self.types, &mut self.instances, &mut self.next_instance)
    }

    /// Serializes the whole database.
    pub fn snapshot(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| WfError::Snapshot { reason: e.to_string() })
    }

    /// Restores a database from a snapshot.
    pub fn restore(snapshot: &str) -> Result<Self> {
        serde_json::from_str(snapshot).map_err(|e| WfError::Snapshot { reason: e.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StepDef, WorkflowBuilder};
    use std::collections::BTreeMap;

    fn wf(name: &str) -> WorkflowType {
        WorkflowBuilder::new(name).step(StepDef::noop("a")).build().unwrap()
    }

    #[test]
    fn types_are_stored_and_found() {
        let mut db = WorkflowDatabase::new();
        assert!(!db.has_type(&WorkflowTypeId::new("w")));
        db.put_type(wf("w"));
        assert!(db.has_type(&WorkflowTypeId::new("w")));
        assert_eq!(db.type_count(), 1);
        assert!(db.get_type(&WorkflowTypeId::new("ghost")).is_err());
    }

    #[test]
    fn instance_ids_are_sequential() {
        let mut db = WorkflowDatabase::new();
        let a = db.allocate_instance_id();
        let b = db.allocate_instance_id();
        assert_ne!(a, b);
        assert_eq!(b.value(), a.value() + 1);
    }

    #[test]
    fn take_removes_the_instance() {
        let mut db = WorkflowDatabase::new();
        let w = wf("w");
        let id = db.allocate_instance_id();
        db.put_instance(WorkflowInstance::new(id, &w, BTreeMap::new(), "s", "t", false));
        assert_eq!(db.instance_count(), 1);
        let inst = db.take_instance(id).unwrap();
        assert_eq!(db.instance_count(), 0);
        assert!(db.take_instance(id).is_err());
        db.put_instance(inst);
        assert_eq!(db.instance_count(), 1);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut db = WorkflowDatabase::new();
        db.put_type(wf("w"));
        let id = db.allocate_instance_id();
        db.put_instance(WorkflowInstance::new(id, &wf("w"), BTreeMap::new(), "s", "t", false));
        let snap = db.snapshot().unwrap();
        let back = WorkflowDatabase::restore(&snap).unwrap();
        assert_eq!(back, db);
        assert!(WorkflowDatabase::restore("not json").is_err());
    }
}
