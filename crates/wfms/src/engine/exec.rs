//! The shard-executable step interpreter.
//!
//! Workflow interpretation is split into a shared, read-only execution
//! environment ([`ExecEnv`]: types, activities, rules, transformations)
//! and mutable per-shard state ([`ShardSlice`]: a disjoint set of
//! instances plus the volatile queues that feed them). Because a step
//! only ever borrows `&WorkflowType` from the environment and `&mut`
//! state of its own shard, independent shards execute on separate
//! workers without synchronization; the engine merges their results
//! deterministically afterwards.
//!
//! Everything that crosses shard boundaries — subworkflow spawns (which
//! need the shared instance-id counter) and parent completions (the
//! parent may live in another shard) — is *deferred* into the slice and
//! resolved by the engine between settle rounds, in a canonical order
//! that does not depend on how instances were partitioned.

use super::instance::{EdgeState, InstanceStatus, StepState, Variable, WorkflowInstance};
use super::{Activity, ActivityContext, RemoteSubRequest};
use crate::error::{Result, WfError};
use crate::history::{HistoryEvent, HistoryKind};
use crate::model::{
    ChannelId, InstanceId, StepDef, StepId, StepKind, WorkflowType, WorkflowTypeId,
};
use b2b_document::Document;
use b2b_network::SimTime;
use b2b_rules::{RuleError, RuleRegistry};
use b2b_transform::{TransformContext, TransformRegistry};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Engine counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instances created (including subworkflows).
    pub instances_created: u64,
    /// Steps executed to completion.
    pub steps_executed: u64,
    /// Documents emitted through send steps.
    pub sends: u64,
    /// Documents consumed by receive steps.
    pub receives: u64,
    /// Rule-function invocations.
    pub rule_invocations: u64,
    /// Transformations applied by transform steps.
    pub transforms: u64,
    /// Edge-guard expressions evaluated while resolving control flow.
    pub guard_evals: u64,
}

impl EngineStats {
    /// Adds another counter set onto this one (shard merge).
    pub(crate) fn absorb(&mut self, other: &EngineStats) {
        self.instances_created += other.instances_created;
        self.steps_executed += other.steps_executed;
        self.sends += other.sends;
        self.receives += other.receives;
        self.rule_invocations += other.rule_invocations;
        self.transforms += other.transforms;
        self.guard_evals += other.guard_evals;
    }
}

pub(crate) enum ExecOutcome {
    Completed,
    Waiting,
    Failed(String),
}

/// A locally spawned subworkflow, deferred so the shared instance-id
/// counter is only touched between settle rounds.
pub(crate) struct SpawnRequest {
    pub parent: InstanceId,
    pub step: StepId,
    pub workflow: WorkflowTypeId,
    pub vars: BTreeMap<String, Variable>,
    pub source: String,
    pub target: String,
}

/// A child completion whose parent was not in the executing shard.
pub(crate) struct ParentFinish {
    pub parent: InstanceId,
    pub step: StepId,
    pub vars: BTreeMap<String, Variable>,
    pub failure: Option<String>,
}

/// The shared, read-only half of the interpreter: everything a step
/// needs that is code or configuration rather than instance state.
pub(crate) struct ExecEnv<'a> {
    pub types: &'a BTreeMap<WorkflowTypeId, WorkflowType>,
    pub activities: &'a BTreeMap<String, Arc<dyn Activity>>,
    pub rules: &'a RuleRegistry,
    pub transforms: &'a TransformRegistry,
    pub carry_types: bool,
    pub now: SimTime,
}

/// Volatile (non-persisted) engine state: queues, waiters, timers, the
/// outbox, audit history, and counters. One resident copy lives in the
/// engine; settle rounds carve per-shard copies out of it.
#[derive(Default)]
pub(crate) struct VolatileState {
    /// Global channel queues (documents waiting for *any* receiver).
    /// Documents travel by `Arc` end to end: routing hands off a pointer,
    /// and the receive step unwraps it (free while the reference is
    /// unique, copy-on-write otherwise).
    pub channel_queues: BTreeMap<ChannelId, VecDeque<Arc<Document>>>,
    /// Per-instance directed queues (session-scoped routing), grouped by
    /// receiving instance so a settle round can move one instance's whole
    /// queue set in a single `remove`/`insert` — the population-scale
    /// partition never clones a channel key.
    pub directed_queues: BTreeMap<InstanceId, BTreeMap<ChannelId, VecDeque<Arc<Document>>>>,
    /// Instances blocked on a channel, FIFO per channel.
    pub waiters: BTreeMap<ChannelId, VecDeque<(InstanceId, StepId)>>,
    /// Documents emitted by send steps, drained by the host.
    pub outbox: Vec<(InstanceId, ChannelId, Arc<Document>)>,
    /// Pending timers.
    pub timers: Vec<(SimTime, InstanceId, StepId)>,
    /// Subworkflows delegated to remote engines.
    pub remote_requests: Vec<RemoteSubRequest>,
    /// Instances ready to run.
    pub runnable: VecDeque<InstanceId>,
    /// Audit history.
    pub history: Vec<HistoryEvent>,
    /// Counters.
    pub stats: EngineStats,
    /// Instances whose state changed since the last `drain_touched`.
    pub touched: BTreeSet<InstanceId>,
    /// Deferred local subworkflow spawns (settle mode only).
    pub spawns: Vec<SpawnRequest>,
    /// Deferred cross-shard parent completions (settle mode only).
    pub parent_finishes: Vec<ParentFinish>,
}

/// One shard's mutable world during a settle round: a disjoint slice of
/// the instance database plus its own volatile state.
#[derive(Default)]
pub(crate) struct ShardSlice {
    pub instances: BTreeMap<InstanceId, WorkflowInstance>,
    pub vol: VolatileState,
}

/// Everything one interpretation call may touch. `ids` is `Some` in
/// legacy sequential mode (subworkflows spawn inline, exactly as before)
/// and `None` in settle mode (spawns defer so results are independent of
/// the shard count).
pub(crate) struct ExecCtx<'a> {
    pub env: &'a ExecEnv<'a>,
    pub instances: &'a mut BTreeMap<InstanceId, WorkflowInstance>,
    pub ids: Option<&'a mut u64>,
    pub vol: &'a mut VolatileState,
}

pub(crate) fn record(
    vol: &mut VolatileState,
    now: SimTime,
    instance: InstanceId,
    kind: HistoryKind,
) {
    vol.history.push(HistoryEvent { at: now, instance, kind });
    vol.touched.insert(instance);
}

fn take_instance(
    instances: &mut BTreeMap<InstanceId, WorkflowInstance>,
    id: InstanceId,
) -> Result<WorkflowInstance> {
    instances.remove(&id).ok_or(WfError::UnknownInstance { instance: id.value() })
}

fn get_instance(
    instances: &BTreeMap<InstanceId, WorkflowInstance>,
    id: InstanceId,
) -> Result<&WorkflowInstance> {
    instances.get(&id).ok_or(WfError::UnknownInstance { instance: id.value() })
}

/// Resolves the workflow type an instance executes. Borrowed straight
/// from the environment on the common path; carried types are cloned out
/// of the instance (carry mode is a migration ablation, and the instance
/// is mutated while the type is held).
pub(crate) fn type_for<'e>(
    env: &ExecEnv<'e>,
    inst: &WorkflowInstance,
) -> Result<Cow<'e, WorkflowType>> {
    if let Some(t) = &inst.carried_type {
        Ok(Cow::Owned(t.clone()))
    } else {
        env.types
            .get(&inst.type_id)
            .map(Cow::Borrowed)
            .ok_or_else(|| WfError::UnknownType { workflow: inst.type_id.to_string() })
    }
}

/// Takes a document out of its `Arc`: free when the reference is unique
/// (the common case — each queued document has exactly one consumer),
/// copy-on-write when something else still holds it.
fn unwrap_doc(doc: Arc<Document>) -> Document {
    Arc::try_unwrap(doc).unwrap_or_else(|shared| (*shared).clone())
}

pub(crate) fn drain_runnable(ctx: &mut ExecCtx<'_>) -> Result<()> {
    while let Some(id) = ctx.vol.runnable.pop_front() {
        run_one(ctx, id)?;
    }
    Ok(())
}

pub(crate) fn run_one(ctx: &mut ExecCtx<'_>, id: InstanceId) -> Result<()> {
    let mut inst = take_instance(ctx.instances, id)?;
    if inst.status != InstanceStatus::Running {
        ctx.instances.insert(id, inst);
        return Ok(());
    }
    let env = ctx.env;
    let wf = match type_for(env, &inst) {
        Ok(wf) => wf,
        Err(e) => {
            ctx.instances.insert(id, inst);
            return Err(e);
        }
    };
    loop {
        if inst.status != InstanceStatus::Running {
            break;
        }
        let mut progressed = false;
        for step in wf.steps() {
            if inst.step_state(&step.id) != StepState::Pending {
                continue;
            }
            let incoming = wf.incoming(&step.id);
            let resolved = incoming.iter().all(|i| inst.edge_states[*i] != EdgeState::Unresolved);
            if !resolved {
                continue;
            }
            let has_token = incoming.is_empty()
                || incoming.iter().any(|i| inst.edge_states[*i] == EdgeState::Taken);
            if !has_token {
                // Dead path: skip and kill outgoing edges.
                inst.step_states.insert(step.id.clone(), StepState::Skipped);
                for i in wf.outgoing(&step.id) {
                    inst.edge_states[i] = EdgeState::Dead;
                }
                record(ctx.vol, ctx.env.now, id, HistoryKind::StepSkipped(step.id.clone()));
                progressed = true;
                continue;
            }
            progressed = true;
            match execute_step(ctx, &mut inst, step) {
                ExecOutcome::Completed => {
                    ctx.vol.stats.steps_executed += 1;
                    if let Err(reason) =
                        mark_completed(&mut inst, &wf, &step.id, &mut ctx.vol.stats)
                    {
                        inst.status = InstanceStatus::Failed(reason.clone());
                        record(ctx.vol, ctx.env.now, id, HistoryKind::InstanceFailed(reason));
                        break;
                    }
                    record(ctx.vol, ctx.env.now, id, HistoryKind::StepCompleted(step.id.clone()));
                }
                ExecOutcome::Waiting => {
                    inst.step_states.insert(step.id.clone(), StepState::Waiting);
                    record(ctx.vol, ctx.env.now, id, HistoryKind::StepWaiting(step.id.clone()));
                }
                ExecOutcome::Failed(reason) => {
                    let reason = format!("step `{}`: {reason}", step.id);
                    inst.status = InstanceStatus::Failed(reason.clone());
                    record(ctx.vol, ctx.env.now, id, HistoryKind::InstanceFailed(reason));
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    if inst.status == InstanceStatus::Running && inst.all_steps_resolved() {
        inst.status = InstanceStatus::Completed;
        record(ctx.vol, ctx.env.now, id, HistoryKind::InstanceCompleted);
    }
    let status = inst.status.clone();
    let parent = inst.parent.clone();
    // The variable snapshot is only handed to a parent on completion;
    // every other exit keeps the (potentially large) map un-copied.
    let vars = match (&parent, &status) {
        (Some(_), InstanceStatus::Completed) => inst.vars.clone(),
        _ => BTreeMap::new(),
    };
    ctx.instances.insert(id, inst);
    if let Some((parent_id, parent_step)) = parent {
        match status {
            InstanceStatus::Completed => {
                finish_parent(ctx, parent_id, &parent_step, vars, None)?;
            }
            InstanceStatus::Failed(reason) => {
                finish_parent(ctx, parent_id, &parent_step, BTreeMap::new(), Some(reason))?;
            }
            InstanceStatus::Running => {}
        }
    }
    Ok(())
}

fn execute_step(ctx: &mut ExecCtx<'_>, inst: &mut WorkflowInstance, step: &StepDef) -> ExecOutcome {
    match &step.kind {
        StepKind::NoOp => ExecOutcome::Completed,
        StepKind::Activity { activity } => {
            let Some(implementation) = ctx.env.activities.get(activity).cloned() else {
                return ExecOutcome::Failed(format!("unknown activity `{activity}`"));
            };
            let mut actx = ActivityContext {
                vars: &mut inst.vars,
                source: &inst.source,
                target: &inst.target,
                now: ctx.env.now,
            };
            match implementation.execute(&mut actx) {
                Ok(()) => ExecOutcome::Completed,
                Err(reason) => ExecOutcome::Failed(reason),
            }
        }
        StepKind::RuleCheck { function, doc_var, out_var } => {
            ctx.vol.stats.rule_invocations += 1;
            // Evaluate against the variable in place — rules only borrow
            // the document, so no copy is needed.
            let result = match inst.vars.get(doc_var) {
                Some(Variable::Document(d)) => {
                    ctx.env.rules.invoke(function, &inst.source, &inst.target, d)
                }
                _ => {
                    return ExecOutcome::Failed(format!(
                        "rule check needs document variable `{doc_var}`"
                    ))
                }
            };
            match result {
                Ok(value) => {
                    inst.vars.insert(out_var.clone(), Variable::Value(value));
                    ExecOutcome::Completed
                }
                Err(e @ RuleError::NoRuleApplies { .. }) => {
                    // The paper's explicit error case.
                    ExecOutcome::Failed(e.to_string())
                }
                Err(e) => ExecOutcome::Failed(e.to_string()),
            }
        }
        StepKind::Transform { target_format, var, out_var } => {
            ctx.vol.stats.transforms += 1;
            let result = match inst.vars.get(var) {
                Some(Variable::Document(d)) => {
                    // Direction-aware context: a document leaving the
                    // normalized format is outbound, so the enterprise
                    // (rule-context target) is the wire-level sender.
                    let outbound = d.format() == &b2b_document::FormatId::NORMALIZED;
                    let (sender, receiver) = if outbound {
                        (inst.target.as_str(), inst.source.as_str())
                    } else {
                        (inst.source.as_str(), inst.target.as_str())
                    };
                    let tctx = TransformContext::new(
                        sender,
                        receiver,
                        &format!("{:09}", inst.id.value()),
                        &format!("i-{}", inst.id.value()),
                    );
                    ctx.env.transforms.transform(d, target_format, &tctx)
                }
                _ => {
                    return ExecOutcome::Failed(format!(
                        "transform needs document variable `{var}`"
                    ))
                }
            };
            match result {
                Ok(out) => {
                    inst.vars.insert(out_var.clone(), Variable::Document(out));
                    ExecOutcome::Completed
                }
                Err(e) => ExecOutcome::Failed(e.to_string()),
            }
        }
        StepKind::Send { channel, var } => {
            // The one remaining copy on the send path: the variable keeps
            // its document, so the outbox gets a fresh `Arc` that routing
            // and delivery then share without further copies.
            let doc = match inst.vars.get(var) {
                Some(Variable::Document(d)) => Arc::new(d.clone()),
                _ => return ExecOutcome::Failed(format!("send needs document variable `{var}`")),
            };
            ctx.vol.stats.sends += 1;
            ctx.vol.outbox.push((inst.id, channel.clone(), doc));
            ExecOutcome::Completed
        }
        StepKind::Receive { channel, var } => {
            let directed = ctx
                .vol
                .directed_queues
                .get_mut(&inst.id)
                .and_then(|qs| qs.get_mut(channel))
                .and_then(VecDeque::pop_front);
            if let Some(doc) = directed
                .or_else(|| ctx.vol.channel_queues.get_mut(channel).and_then(VecDeque::pop_front))
            {
                ctx.vol.stats.receives += 1;
                inst.vars.insert(var.clone(), Variable::Document(unwrap_doc(doc)));
                ExecOutcome::Completed
            } else {
                ctx.vol
                    .waiters
                    .entry(channel.clone())
                    .or_default()
                    .push_back((inst.id, step.id.clone()));
                ExecOutcome::Waiting
            }
        }
        StepKind::Timer { delay_ms } => {
            ctx.vol.timers.push((ctx.env.now + *delay_ms, inst.id, step.id.clone()));
            ExecOutcome::Waiting
        }
        StepKind::Subworkflow { workflow, remote } => {
            if let Some(engine) = remote {
                ctx.vol.remote_requests.push(RemoteSubRequest {
                    parent_instance: inst.id,
                    step: step.id.clone(),
                    engine: engine.clone(),
                    workflow: workflow.clone(),
                    vars: inst.vars.clone(),
                    source: inst.source.clone(),
                    target: inst.target.clone(),
                });
                return ExecOutcome::Waiting;
            }
            let Some(ids) = ctx.ids.as_deref_mut() else {
                // Settle mode: allocating an id here would make results
                // depend on shard scheduling. Defer to the engine, which
                // spawns between rounds in canonical order.
                ctx.vol.spawns.push(SpawnRequest {
                    parent: inst.id,
                    step: step.id.clone(),
                    workflow: workflow.clone(),
                    vars: inst.vars.clone(),
                    source: inst.source.clone(),
                    target: inst.target.clone(),
                });
                return ExecOutcome::Waiting;
            };
            let sub_wf = match ctx.env.types.get(workflow) {
                Some(wf) => wf.clone(),
                None => {
                    return ExecOutcome::Failed(format!(
                        "subworkflow type `{workflow}` not in database"
                    ))
                }
            };
            let child_id = InstanceId::new(*ids);
            *ids += 1;
            let mut child = WorkflowInstance::new(
                child_id,
                &sub_wf,
                inst.vars.clone(),
                &inst.source,
                &inst.target,
                ctx.env.carry_types,
            );
            child.parent = Some((inst.id, step.id.clone()));
            ctx.instances.insert(child_id, child);
            ctx.vol.stats.instances_created += 1;
            record(ctx.vol, ctx.env.now, child_id, HistoryKind::InstanceCreated);
            ctx.vol.runnable.push_back(child_id);
            // Subworkflows return control ONLY on completion
            // (Section 3.1) — the parent step waits.
            ExecOutcome::Waiting
        }
    }
}

pub(crate) fn match_waiters(ctx: &mut ExecCtx<'_>, channel: &ChannelId) -> Result<()> {
    loop {
        let queue_len = ctx.vol.channel_queues.get(channel).map(VecDeque::len).unwrap_or(0);
        if queue_len == 0 {
            return Ok(());
        }
        let Some((inst_id, step_id)) =
            ctx.vol.waiters.get_mut(channel).and_then(VecDeque::pop_front)
        else {
            return Ok(());
        };
        // Stale waiter (instance failed or was migrated): drop it.
        let Ok(inst) = get_instance(ctx.instances, inst_id) else { continue };
        if inst.step_state(&step_id) != StepState::Waiting {
            continue;
        }
        let doc = ctx
            .vol
            .channel_queues
            .get_mut(channel)
            .and_then(VecDeque::pop_front)
            .expect("queue checked non-empty");
        let var = {
            let wf = type_for(ctx.env, get_instance(ctx.instances, inst_id)?)?;
            match &wf.step(&step_id)?.kind {
                StepKind::Receive { var, .. } => var.clone(),
                other => {
                    return Err(WfError::Channel {
                        channel: channel.to_string(),
                        reason: format!("waiter step `{step_id}` is a {}", other.kind_name()),
                    })
                }
            }
        };
        let mut inst = take_instance(ctx.instances, inst_id)?;
        inst.vars.insert(var, Variable::Document(unwrap_doc(doc)));
        ctx.vol.stats.receives += 1;
        record(ctx.vol, ctx.env.now, inst_id, HistoryKind::Delivered(step_id.clone()));
        finish_step_and_resume(ctx, inst, &step_id)?;
    }
}

pub(crate) fn complete_waiting_step(
    ctx: &mut ExecCtx<'_>,
    inst_id: InstanceId,
    step_id: &StepId,
) -> Result<()> {
    let Ok(inst) = get_instance(ctx.instances, inst_id) else { return Ok(()) };
    if inst.step_state(step_id) != StepState::Waiting {
        return Ok(());
    }
    let inst = take_instance(ctx.instances, inst_id)?;
    finish_step_and_resume(ctx, inst, step_id)
}

pub(crate) fn finish_parent(
    ctx: &mut ExecCtx<'_>,
    parent_id: InstanceId,
    parent_step: &StepId,
    child_vars: BTreeMap<String, Variable>,
    failure: Option<String>,
) -> Result<()> {
    if ctx.ids.is_none() {
        // Settle mode: the parent may live in another shard, and even when
        // it does not, resolving inline would make history order depend on
        // the partitioning. Defer uniformly; the engine resolves between
        // rounds in canonical order.
        ctx.vol.parent_finishes.push(ParentFinish {
            parent: parent_id,
            step: parent_step.clone(),
            vars: child_vars,
            failure,
        });
        return Ok(());
    }
    if let Some(reason) = failure {
        let mut parent = take_instance(ctx.instances, parent_id)?;
        let reason = format!("subworkflow at `{parent_step}` failed: {reason}");
        parent.status = InstanceStatus::Failed(reason.clone());
        let grandparent = parent.parent.clone();
        ctx.instances.insert(parent_id, parent);
        record(ctx.vol, ctx.env.now, parent_id, HistoryKind::InstanceFailed(reason.clone()));
        if let Some((gp_id, gp_step)) = grandparent {
            finish_parent(ctx, gp_id, &gp_step, BTreeMap::new(), Some(reason))?;
        }
        return Ok(());
    }
    let mut parent = take_instance(ctx.instances, parent_id)?;
    parent.vars.extend(child_vars);
    ctx.vol.stats.steps_executed += 1;
    finish_step_and_resume(ctx, parent, parent_step)
}

/// Marks a (previously waiting) step completed on a taken-out instance,
/// resolves its outgoing edges, stores it back and queues a resume.
pub(crate) fn finish_step_and_resume(
    ctx: &mut ExecCtx<'_>,
    mut inst: WorkflowInstance,
    step_id: &StepId,
) -> Result<()> {
    let id = inst.id;
    let wf = match type_for(ctx.env, &inst) {
        Ok(wf) => wf,
        Err(e) => {
            ctx.instances.insert(id, inst);
            return Err(e);
        }
    };
    if let Err(reason) = mark_completed(&mut inst, &wf, step_id, &mut ctx.vol.stats) {
        inst.status = InstanceStatus::Failed(reason.clone());
        ctx.instances.insert(id, inst);
        record(ctx.vol, ctx.env.now, id, HistoryKind::InstanceFailed(reason));
        return Ok(());
    }
    record(ctx.vol, ctx.env.now, id, HistoryKind::StepCompleted(step_id.clone()));
    ctx.instances.insert(id, inst);
    ctx.vol.runnable.push_back(id);
    Ok(())
}

/// Fails an instance outright (e.g. a deferred subworkflow spawn whose
/// type vanished) and propagates the failure to its parent.
pub(crate) fn fail_instance(ctx: &mut ExecCtx<'_>, id: InstanceId, reason: String) -> Result<()> {
    let mut inst = take_instance(ctx.instances, id)?;
    inst.status = InstanceStatus::Failed(reason.clone());
    let parent = inst.parent.clone();
    ctx.instances.insert(id, inst);
    record(ctx.vol, ctx.env.now, id, HistoryKind::InstanceFailed(reason.clone()));
    if let Some((p, s)) = parent {
        finish_parent(ctx, p, &s, BTreeMap::new(), Some(reason))?;
    }
    Ok(())
}

/// Delivers a document to one specific instance's receive step on
/// `channel`, stepping the instance if it is already waiting there.
pub(crate) fn deliver_to(
    ctx: &mut ExecCtx<'_>,
    instance: InstanceId,
    channel: &ChannelId,
    doc: Arc<Document>,
) -> Result<()> {
    let running =
        ctx.instances.get(&instance).map(|i| i.status == InstanceStatus::Running).unwrap_or(false);
    if !running {
        return Err(WfError::Channel {
            channel: channel.to_string(),
            reason: format!("instance {instance} is not running"),
        });
    }
    // Find whether the instance is currently waiting on this channel, and
    // which variable its receive step fills (one type lookup for both).
    let step_waiting = {
        let inst = get_instance(ctx.instances, instance)?;
        let wf = type_for(ctx.env, inst)?;
        wf.steps()
            .iter()
            .find(|s| {
                matches!(&s.kind, StepKind::Receive { channel: c, .. } if c == channel)
                    && inst.step_state(&s.id) == StepState::Waiting
            })
            .map(|s| match &s.kind {
                StepKind::Receive { var, .. } => (s.id.clone(), var.clone()),
                _ => unreachable!("matched receive above"),
            })
    };
    match step_waiting {
        Some((step_id, var)) => {
            // Drop the stale global waiter entry for this instance.
            if let Some(q) = ctx.vol.waiters.get_mut(channel) {
                q.retain(|(i, s)| !(*i == instance && *s == step_id));
            }
            let mut inst = take_instance(ctx.instances, instance)?;
            inst.vars.insert(var, Variable::Document(unwrap_doc(doc)));
            ctx.vol.stats.receives += 1;
            record(ctx.vol, ctx.env.now, instance, HistoryKind::Delivered(step_id.clone()));
            finish_step_and_resume(ctx, inst, &step_id)?;
            drain_runnable(ctx)
        }
        None => {
            ctx.vol
                .directed_queues
                .entry(instance)
                .or_default()
                .entry(channel.clone())
                .or_default()
                .push_back(doc);
            Ok(())
        }
    }
}

/// Whether `id` is currently blocked in a receive step on `channel` —
/// i.e. a directed document would wake it right now.
pub(crate) fn receive_waiting(
    env: &ExecEnv<'_>,
    instances: &BTreeMap<InstanceId, WorkflowInstance>,
    id: InstanceId,
    channel: &ChannelId,
) -> bool {
    let Some(inst) = instances.get(&id) else { return false };
    if inst.status != InstanceStatus::Running {
        return false;
    }
    let Ok(wf) = type_for(env, inst) else { return false };
    wf.steps().iter().any(|s| {
        matches!(&s.kind, StepKind::Receive { channel: c, .. } if c == channel)
            && inst.step_state(&s.id) == StepState::Waiting
    })
}

/// Runs one shard to a local fixpoint: drains the runnable queue, wakes
/// every directed delivery whose receiver is waiting, and matches global
/// channel queues against waiters, until nothing changes.
pub(crate) fn settle_slice(ctx: &mut ExecCtx<'_>) -> Result<()> {
    loop {
        drain_runnable(ctx)?;
        if wake_one_directed(ctx)? {
            continue;
        }
        let channels: Vec<ChannelId> = ctx
            .vol
            .channel_queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(c, _)| c.clone())
            .collect();
        let mut matched = false;
        for channel in channels {
            let before = ctx.vol.channel_queues.get(&channel).map(VecDeque::len).unwrap_or(0);
            match_waiters(ctx, &channel)?;
            let after = ctx.vol.channel_queues.get(&channel).map(VecDeque::len).unwrap_or(0);
            matched |= after < before;
        }
        if !matched && ctx.vol.runnable.is_empty() {
            return Ok(());
        }
    }
}

/// Completes the first (in key order) directed delivery whose receiver
/// is waiting; returns whether one was found.
fn wake_one_directed(ctx: &mut ExecCtx<'_>) -> Result<bool> {
    let key = ctx.vol.directed_queues.iter().find_map(|(id, qs)| {
        qs.iter()
            .find(|(chan, q)| !q.is_empty() && receive_waiting(ctx.env, ctx.instances, *id, chan))
            .map(|(chan, _)| (*id, chan.clone()))
    });
    let Some((id, chan)) = key else { return Ok(false) };
    let doc = ctx
        .vol
        .directed_queues
        .get_mut(&id)
        .and_then(|qs| qs.get_mut(&chan))
        .and_then(VecDeque::pop_front)
        .expect("checked non-empty");
    deliver_to(ctx, id, &chan, doc)?;
    Ok(true)
}

/// Marks a step completed and resolves its outgoing edges (guard
/// evaluation); returns a failure reason when a guard cannot be evaluated.
pub(crate) fn mark_completed(
    inst: &mut WorkflowInstance,
    wf: &WorkflowType,
    step_id: &StepId,
    stats: &mut EngineStats,
) -> std::result::Result<(), String> {
    inst.step_states.insert(step_id.clone(), StepState::Completed);
    for i in wf.outgoing(step_id) {
        let edge = &wf.edges()[i];
        let taken = match &edge.guard {
            None => true,
            Some(cond) => {
                stats.guard_evals += 1;
                let var = inst
                    .vars
                    .get(&cond.var)
                    .ok_or_else(|| format!("guard variable `{}` is not set", cond.var))?;
                // Documents evaluate in place; only plain values pay the
                // wrapping copy guards need to address them.
                match var {
                    Variable::Document(d) => {
                        cond.eval(d, &inst.source, &inst.target).map_err(|e| e.to_string())?
                    }
                    Variable::Value(_) => {
                        let doc = var.guard_document();
                        cond.eval(&doc, &inst.source, &inst.target).map_err(|e| e.to_string())?
                    }
                }
            }
        };
        inst.edge_states[i] = if taken { EdgeState::Taken } else { EdgeState::Dead };
    }
    Ok(())
}
