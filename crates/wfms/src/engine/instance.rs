//! Workflow instance state.

use crate::error::{Result, WfError};
use crate::model::{InstanceId, StepId, WorkflowType, WorkflowTypeId};
use b2b_document::{record, CorrelationId, DocKind, Document, FormatId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A variable slot in an instance: either a business document or a plain
/// value (rule results, counters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Variable {
    /// A business document.
    Document(Document),
    /// A plain value.
    Value(Value),
}

impl Variable {
    /// Extracts a document, or errors naming the variable.
    pub fn as_document(&self, var: &str) -> Result<&Document> {
        match self {
            Self::Document(d) => Ok(d),
            Self::Value(v) => Err(WfError::StepFailed {
                workflow: String::new(),
                step: String::new(),
                reason: format!("variable `{var}` holds a {} value, not a document", v.type_name()),
            }),
        }
    }

    /// Document a guard condition can evaluate against: documents pass
    /// through; plain values are wrapped so guards address them as
    /// `document.value`.
    pub fn guard_document(&self) -> Document {
        match self {
            Self::Document(d) => d.clone(),
            Self::Value(v) => Document::new(
                DocKind::Receipt,
                FormatId::custom("variable"),
                CorrelationId::new("guard"),
                record! { "value" => v.clone() },
            ),
        }
    }
}

/// Per-step execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepState {
    /// Not yet executed.
    Pending,
    /// Waiting for a message, timer, or subworkflow.
    Waiting,
    /// Finished.
    Completed,
    /// Eliminated by a false branch guard.
    Skipped,
}

/// Per-edge resolution state (dead-path elimination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeState {
    /// Source step not resolved yet.
    Unresolved,
    /// Token flowed along this edge.
    Taken,
    /// Guard was false or source was skipped.
    Dead,
}

/// Overall instance status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceStatus {
    /// Executing or blocked on receive/timer/subworkflow.
    Running,
    /// All steps completed or skipped.
    Completed,
    /// A step failed; the reason is recorded.
    Failed(String),
}

/// One workflow instance. Fully serializable — migration between engines
/// works by serializing this struct (Section 2.1's "at any point in time a
/// workflow instance is either persisted in the database or in state
/// transition in the workflow engine").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowInstance {
    /// Instance id (engine-local).
    pub id: InstanceId,
    /// Type this instance executes.
    pub type_id: WorkflowTypeId,
    /// Type version captured at creation.
    pub type_version: u32,
    /// Overall status.
    pub status: InstanceStatus,
    /// Per-step states.
    pub step_states: BTreeMap<StepId, StepState>,
    /// Per-edge states, indexed like `WorkflowType::edges`.
    pub edge_states: Vec<EdgeState>,
    /// Variables.
    pub vars: BTreeMap<String, Variable>,
    /// Rule-context source (trading partner or application the triggering
    /// document came from).
    pub source: String,
    /// Rule-context target.
    pub target: String,
    /// Parent (instance, step) when this is a subworkflow.
    pub parent: Option<(InstanceId, StepId)>,
    /// The carried copy of the type, when the engine runs in
    /// carry-type-in-instance mode (Section 2.1's trade-off).
    pub carried_type: Option<WorkflowType>,
}

impl WorkflowInstance {
    /// Creates a fresh instance of `wf`.
    pub fn new(
        id: InstanceId,
        wf: &WorkflowType,
        vars: BTreeMap<String, Variable>,
        source: &str,
        target: &str,
        carry_type: bool,
    ) -> Self {
        Self {
            id,
            type_id: wf.id().clone(),
            type_version: wf.version(),
            status: InstanceStatus::Running,
            step_states: wf.steps().iter().map(|s| (s.id.clone(), StepState::Pending)).collect(),
            edge_states: vec![EdgeState::Unresolved; wf.edges().len()],
            vars,
            source: source.to_string(),
            target: target.to_string(),
            parent: None,
            carried_type: carry_type.then(|| wf.clone()),
        }
    }

    /// State of a step.
    pub fn step_state(&self, id: &StepId) -> StepState {
        self.step_states.get(id).copied().unwrap_or(StepState::Pending)
    }

    /// Whether every step is completed or skipped.
    pub fn all_steps_resolved(&self) -> bool {
        self.step_states.values().all(|s| matches!(s, StepState::Completed | StepState::Skipped))
    }

    /// Reads a variable.
    pub fn var(&self, name: &str) -> Result<&Variable> {
        self.vars.get(name).ok_or_else(|| WfError::StepFailed {
            workflow: self.type_id.to_string(),
            step: String::new(),
            reason: format!("variable `{name}` is not set"),
        })
    }

    /// Approximate in-memory size of the serialized instance — used by the
    /// migration bench to compare carry-type vs. lookup mode.
    pub fn snapshot_len(&self) -> usize {
        serde_json::to_string(self).map(|s| s.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StepDef, WorkflowBuilder};

    fn wf() -> WorkflowType {
        WorkflowBuilder::new("w")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .edge("a", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_instance_is_pending_everywhere() {
        let inst =
            WorkflowInstance::new(InstanceId::new(1), &wf(), BTreeMap::new(), "s", "t", false);
        assert_eq!(inst.status, InstanceStatus::Running);
        assert_eq!(inst.step_state(&StepId::new("a")), StepState::Pending);
        assert_eq!(inst.edge_states, vec![EdgeState::Unresolved]);
        assert!(!inst.all_steps_resolved());
        assert!(inst.carried_type.is_none());
    }

    #[test]
    fn carry_type_mode_embeds_the_definition() {
        let plain =
            WorkflowInstance::new(InstanceId::new(1), &wf(), BTreeMap::new(), "s", "t", false);
        let carrying =
            WorkflowInstance::new(InstanceId::new(2), &wf(), BTreeMap::new(), "s", "t", true);
        assert!(carrying.carried_type.is_some());
        assert!(
            carrying.snapshot_len() > plain.snapshot_len(),
            "carried type makes the instance strictly bigger on the wire"
        );
    }

    #[test]
    fn instance_round_trips_through_serde() {
        let mut inst =
            WorkflowInstance::new(InstanceId::new(1), &wf(), BTreeMap::new(), "s", "t", true);
        inst.vars
            .insert("po".into(), Variable::Document(b2b_document::normalized::sample_po("1", 10)));
        let json = serde_json::to_string(&inst).unwrap();
        let back: WorkflowInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn guard_document_wraps_plain_values() {
        let v = Variable::Value(Value::Bool(true));
        let doc = v.guard_document();
        assert_eq!(doc.get("value").unwrap(), &Value::Bool(true));
        assert!(v.as_document("x").is_err());
    }
}
