//! The workflow engine: an interpreter for workflow instances.
//!
//! Interpretation itself lives in [`exec`] as free functions over an
//! [`exec::ExecCtx`] — a shared read-only environment plus mutable
//! instance/queue state. The `Engine` here owns the database and the
//! volatile state, exposes the sequential API (`run`, `deliver`,
//! `deliver_to`, `advance_time`), and adds [`Engine::settle`]: a
//! shard-parallel fixpoint that partitions instances across scoped
//! threads and merges the results deterministically.

pub mod instance;

mod exec;
mod pool;

#[cfg(test)]
mod tests;

pub use exec::EngineStats;
pub use instance::{EdgeState, InstanceStatus, StepState, Variable, WorkflowInstance};
pub use pool::{PoolStats, WorkerPool};
// `SettleMetrics` is defined below and re-exported from the crate root.

use crate::db::WorkflowDatabase;
use crate::error::{Result, WfError};
use crate::federation::EngineId;
use crate::history::{HistoryEvent, HistoryKind};
use crate::model::{ChannelId, InstanceId, StepId, StepKind, WorkflowType, WorkflowTypeId};
use b2b_document::Document;
use b2b_network::SimTime;
use b2b_rules::RuleRegistry;
use b2b_transform::TransformRegistry;
use exec::{ExecCtx, ExecEnv, ShardSlice, VolatileState};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Settle-cost counters, read via [`Engine::settle_metrics`].
///
/// `rounds`, `touched_*`, and `instances_resident` are pure functions of
/// the interaction trace — identical at any shard count or dispatch mode,
/// so they may join determinism fingerprints. `moved_*` counts instances
/// physically moved into shard slices, which is `0` for in-place rounds
/// (one shard) and shard-layout-dependent otherwise: measurement only,
/// keep it out of fingerprints (the struct is deliberately not `Eq`,
/// like [`PoolStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SettleMetrics {
    /// Instances resident in the workflow database right now.
    pub instances_resident: u64,
    /// Settle rounds executed (whole-engine and sharded).
    pub rounds: u64,
    /// Touched-set size of the last round: instances that were runnable
    /// or had a directed document their receive step was waiting on.
    pub touched_last_round: u64,
    /// Cumulative touched-set sizes across all rounds.
    pub touched_total: u64,
    /// Instances moved into shard slices by the last round (`0` when the
    /// round settled in place).
    pub moved_last_round: u64,
    /// Cumulative instances moved into shard slices.
    pub moved_total: u64,
}

/// Round-scoped partition scratch, reused across rounds so steady-state
/// planning allocates nothing: the buffers keep their capacity between
/// rounds and between settle calls.
#[derive(Default)]
struct SettleScratch {
    /// The round's touched set as sorted, deduped `(instance, shard)`
    /// pairs — one `assign` evaluation per instance per round, and the
    /// only id→shard map the round needs (runnable ids resolve their
    /// shard by binary search instead of re-hashing).
    touched: Vec<(InstanceId, usize)>,
    /// shard → slice position for this round (`usize::MAX` = shard idle).
    slice_of_shard: Vec<usize>,
    /// Busy slices laid out this round.
    slices: usize,
}

/// One shard slice plus its settle result. During a round the pool
/// claims each cell's index exactly once, so exactly one thread holds a
/// `&mut` into it; after the round the dispatcher owns them all again.
struct SliceCell(std::cell::UnsafeCell<(ShardSlice, Option<Result<()>>)>);

// SAFETY: the pool's claim protocol (one `fetch_add` winner per index)
// makes access to each cell exclusive within a round.
unsafe impl Sync for SliceCell {}

/// Context handed to an [`Activity`] implementation.
pub struct ActivityContext<'a> {
    /// Instance variables (read and write).
    pub vars: &'a mut BTreeMap<String, Variable>,
    /// Rule-context source.
    pub source: &'a str,
    /// Rule-context target.
    pub target: &'a str,
    /// Current logical time.
    pub now: SimTime,
}

impl ActivityContext<'_> {
    /// Reads a document variable.
    pub fn document(&self, var: &str) -> std::result::Result<&Document, String> {
        match self.vars.get(var) {
            Some(Variable::Document(d)) => Ok(d),
            Some(Variable::Value(v)) => {
                Err(format!("variable `{var}` holds a {} value", v.type_name()))
            }
            None => Err(format!("variable `{var}` is not set")),
        }
    }

    /// Writes a document variable.
    pub fn set_document(&mut self, var: &str, doc: Document) {
        self.vars.insert(var.to_string(), Variable::Document(doc));
    }

    /// Writes a value variable.
    pub fn set_value(&mut self, var: &str, value: b2b_document::Value) {
        self.vars.insert(var.to_string(), Variable::Value(value));
    }
}

/// An externally implemented step behaviour (ERP store/extract, approval,
/// audit, …). Registered with the engine by name; workflow types only
/// carry the name.
pub trait Activity: Send + Sync {
    /// Executes the activity; an `Err` fails the step (and the instance).
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> std::result::Result<(), String>;
}

impl<F> Activity for F
where
    F: Fn(&mut ActivityContext<'_>) -> std::result::Result<(), String> + Send + Sync,
{
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> std::result::Result<(), String> {
        self(ctx)
    }
}

/// A subworkflow delegated to a remote engine, awaiting federation pickup.
#[derive(Debug, Clone)]
pub struct RemoteSubRequest {
    /// Parent instance on this engine.
    pub parent_instance: InstanceId,
    /// The waiting subworkflow step.
    pub step: StepId,
    /// Engine the subworkflow should run on.
    pub engine: EngineId,
    /// Subworkflow type.
    pub workflow: WorkflowTypeId,
    /// Variable snapshot handed to the remote instance.
    pub vars: BTreeMap<String, Variable>,
    /// Rule-context source.
    pub source: String,
    /// Rule-context target.
    pub target: String,
}

/// The workflow engine (Figure 4): database, activity registry, rule and
/// transformation registries, channels, timers, and an outbox the host
/// drains.
pub struct Engine {
    id: EngineId,
    now: SimTime,
    db: WorkflowDatabase,
    activities: BTreeMap<String, Arc<dyn Activity>>,
    rules: RuleRegistry,
    transforms: TransformRegistry,
    carry_types: bool,
    vol: VolatileState,
    /// Persistent settle workers; empty until the first multi-shard
    /// settle (or an explicit [`Engine::configure_pool`]) warms it up.
    pool: WorkerPool,
    /// Steal-chunk override (`None` = per-stage defaults: 1 for settle
    /// slices, 8 for decode batches).
    steal_chunk: Option<usize>,
    /// Settle-cost counters (see [`SettleMetrics`]).
    settle_counters: SettleMetrics,
    /// Reusable round-planning buffers.
    scratch: SettleScratch,
    /// Differential-testing reference: partition every instance of a busy
    /// shard per round (the pre-touched-set behaviour) instead of only
    /// the touched ones. Byte-identical results, O(live instances) cost.
    full_partition: bool,
}

impl Engine {
    /// Creates an engine.
    pub fn new(id: EngineId) -> Self {
        Self {
            id,
            now: SimTime::ZERO,
            db: WorkflowDatabase::new(),
            activities: BTreeMap::new(),
            rules: RuleRegistry::new(),
            transforms: TransformRegistry::new(),
            carry_types: false,
            vol: VolatileState::default(),
            pool: WorkerPool::default(),
            steal_chunk: None,
            settle_counters: SettleMetrics::default(),
            scratch: SettleScratch::default(),
            full_partition: false,
        }
    }

    /// Settle-cost counters: instances resident, the last round's touched
    /// set, and how many instances rounds physically moved. The
    /// `touched`/`rounds` members are deterministic; `moved_*` depends on
    /// the shard layout (see [`SettleMetrics`]).
    pub fn settle_metrics(&self) -> SettleMetrics {
        SettleMetrics {
            instances_resident: self.db.instance_count() as u64,
            ..self.settle_counters
        }
    }

    /// Switches multi-shard settle rounds back to full-partition mode:
    /// every instance of a busy shard moves into its slice each round,
    /// exactly as before the touched-set optimization. Results are
    /// byte-identical either way — this exists so differential tests can
    /// prove that, and costs O(live instances) per round.
    pub fn set_full_partition_settle(&mut self, full: bool) {
        self.full_partition = full;
    }

    /// Pre-spawns pool workers so the first settle does not pay spawn
    /// cost. `settle` also grows the pool lazily; this merely front-loads
    /// the warm-up. Grow-only.
    pub fn configure_pool(&mut self, workers: usize) {
        self.pool.ensure_workers(workers);
    }

    /// The settle worker pool (hosts reuse it for other index-parallel
    /// stages, e.g. batched edge decode).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Pool utilization counters. Scheduling-dependent fields — keep out
    /// of determinism fingerprints (see [`PoolStats`]).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Overrides the work-stealing chunk size for every pool dispatch;
    /// `0` restores the per-stage defaults. The fingerprint is identical
    /// for any chunk size — this knob trades scheduling granularity
    /// against claim traffic, and doubles as the `B2B_POOL_STRESS`
    /// interleaving maximizer (chunk 1).
    pub fn set_steal_chunk(&mut self, chunk: usize) {
        self.steal_chunk = if chunk == 0 { None } else { Some(chunk) };
    }

    /// The effective steal chunk for a stage whose default is `default`.
    pub fn steal_chunk_or(&self, default: usize) -> usize {
        self.steal_chunk.unwrap_or(default)
    }

    /// Engine id.
    pub fn id(&self) -> &EngineId {
        &self.id
    }

    /// Switches to carry-type-in-instance mode (Section 2.1 trade-off;
    /// ablated by the migration bench).
    pub fn set_carry_types(&mut self, carry: bool) {
        self.carry_types = carry;
    }

    /// The workflow database.
    pub fn db(&self) -> &WorkflowDatabase {
        &self.db
    }

    /// Mutable database access (used by federation for type migration).
    pub fn db_mut(&mut self) -> &mut WorkflowDatabase {
        &mut self.db
    }

    /// Counters.
    pub fn stats(&self) -> &EngineStats {
        &self.vol.stats
    }

    /// Audit history.
    pub fn history(&self) -> &[HistoryEvent] {
        &self.vol.history
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers an activity implementation.
    pub fn register_activity(&mut self, name: &str, activity: Arc<dyn Activity>) {
        self.activities.insert(name.to_string(), activity);
    }

    /// The rule registry (the paper's externalized business rules).
    pub fn rules(&self) -> &RuleRegistry {
        &self.rules
    }

    /// Mutable rule registry (changing partner rules touches nothing else).
    pub fn rules_mut(&mut self) -> &mut RuleRegistry {
        &mut self.rules
    }

    /// Installs the rule registry.
    pub fn set_rules(&mut self, rules: RuleRegistry) {
        self.rules = rules;
    }

    /// Installs the transformation registry.
    pub fn set_transforms(&mut self, transforms: TransformRegistry) {
        self.transforms = transforms;
    }

    /// The transformation registry.
    pub fn transforms(&self) -> &TransformRegistry {
        &self.transforms
    }

    /// Mutable transformation registry (dispatch-mode toggles, hot
    /// re-registration).
    pub fn transforms_mut(&mut self) -> &mut TransformRegistry {
        &mut self.transforms
    }

    /// Deploys a workflow type.
    pub fn deploy(&mut self, wf: WorkflowType) {
        self.db.put_type(wf);
    }

    /// Creates an instance; `source`/`target` seed the rule context.
    pub fn create_instance(
        &mut self,
        type_id: &WorkflowTypeId,
        vars: BTreeMap<String, Variable>,
        source: &str,
        target: &str,
    ) -> Result<InstanceId> {
        let wf = self.db.get_type(type_id)?.clone();
        let id = self.db.allocate_instance_id();
        let inst = WorkflowInstance::new(id, &wf, vars, source, target, self.carry_types);
        self.db.put_instance(inst);
        self.vol.stats.instances_created += 1;
        exec::record(&mut self.vol, self.now, id, HistoryKind::InstanceCreated);
        Ok(id)
    }

    /// Runs an instance (and everything it makes runnable) until blocked,
    /// completed, or failed.
    pub fn run(&mut self, id: InstanceId) -> Result<InstanceStatus> {
        self.vol.runnable.push_back(id);
        self.with_ctx(exec::drain_runnable)?;
        self.status(id)
    }

    /// Status of an instance.
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus> {
        Ok(self.db.get_instance(id)?.status.clone())
    }

    /// Reads an instance variable (for assertions and hosts).
    pub fn variable(&self, id: InstanceId, var: &str) -> Result<Variable> {
        Ok(self.db.get_instance(id)?.var(var)?.clone())
    }

    /// Delivers a document to a channel; a waiting receive step consumes
    /// it (FIFO), otherwise it queues until one does.
    pub fn deliver(&mut self, channel: &ChannelId, doc: impl Into<Arc<Document>>) -> Result<()> {
        self.vol.channel_queues.entry(channel.clone()).or_default().push_back(doc.into());
        self.with_ctx(|ctx| {
            exec::match_waiters(ctx, channel)?;
            exec::drain_runnable(ctx)
        })
    }

    /// Delivers a document to one specific instance's receive step on
    /// `channel` (hosts use this for session-scoped routing between
    /// public processes, bindings, and private processes). If the
    /// instance is not yet waiting there, the document queues until its
    /// receive step executes.
    pub fn deliver_to(
        &mut self,
        instance: InstanceId,
        channel: &ChannelId,
        doc: impl Into<Arc<Document>>,
    ) -> Result<()> {
        let doc = doc.into();
        self.with_ctx(|ctx| exec::deliver_to(ctx, instance, channel, doc))
    }

    /// Queues a document on an instance's directed channel WITHOUT
    /// stepping the instance. Staged hosts use this to decouple routing
    /// (single-threaded) from execution ([`Engine::settle`], sharded);
    /// the queued document wakes its receiver in the next settle.
    /// Documents move by `Arc`, so re-queueing what [`drain_outbox`]
    /// (Self::drain_outbox) returned is pointer-cheap.
    pub fn enqueue_to(
        &mut self,
        instance: InstanceId,
        channel: &ChannelId,
        doc: impl Into<Arc<Document>>,
    ) -> Result<()> {
        let running = self
            .db
            .get_instance(instance)
            .map(|i| i.status == InstanceStatus::Running)
            .unwrap_or(false);
        if !running {
            return Err(WfError::Channel {
                channel: channel.to_string(),
                reason: format!("instance {instance} is not running"),
            });
        }
        self.vol
            .directed_queues
            .entry(instance)
            .or_default()
            .entry(channel.clone())
            .or_default()
            .push_back(doc.into());
        Ok(())
    }

    /// Marks an instance runnable without stepping it; the next
    /// [`Engine::settle`] (or `run`) executes it.
    pub fn schedule(&mut self, id: InstanceId) {
        self.vol.runnable.push_back(id);
    }

    /// Instances whose persisted state changed since the last call
    /// (sorted). Hosts use this to refresh derived caches instead of
    /// rescanning every session.
    pub fn drain_touched(&mut self) -> Vec<InstanceId> {
        std::mem::take(&mut self.vol.touched).into_iter().collect()
    }

    /// Takes everything send steps have emitted, tagged with the emitting
    /// instance so hosts can route per session. Sorted by
    /// `(InstanceId, ChannelId)` — per-instance emission order is
    /// preserved (the sort is stable), and the overall order is canonical
    /// regardless of how instances were partitioned across shards.
    /// Documents come out as `Arc`s: hosts that re-queue them into
    /// another instance ([`Engine::enqueue_to`]) move a pointer, not a
    /// document tree.
    pub fn drain_outbox(&mut self) -> Vec<(InstanceId, ChannelId, Arc<Document>)> {
        let mut out = std::mem::take(&mut self.vol.outbox);
        out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        out
    }

    /// Takes pending remote-subworkflow requests (federation calls this).
    pub fn drain_remote_requests(&mut self) -> Vec<RemoteSubRequest> {
        std::mem::take(&mut self.vol.remote_requests)
    }

    /// Advances logical time and fires due timers.
    pub fn advance_time(&mut self, now: SimTime) -> Result<()> {
        self.now = now;
        let mut due = Vec::new();
        self.vol.timers.retain(|(at, inst, step)| {
            if *at <= now {
                due.push((*inst, step.clone()));
                false
            } else {
                true
            }
        });
        self.with_ctx(|ctx| {
            for (inst_id, step_id) in due {
                exec::complete_waiting_step(ctx, inst_id, &step_id)?;
            }
            exec::drain_runnable(ctx)
        })
    }

    /// Whether any instance is blocked (running but not finished).
    pub fn blocked_instances(&self) -> Vec<InstanceId> {
        self.db
            .instance_ids()
            .into_iter()
            .filter(|id| {
                self.db
                    .get_instance(*id)
                    .map(|i| i.status == InstanceStatus::Running && !i.all_steps_resolved())
                    .unwrap_or(false)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Shard-parallel settling.

    /// Runs every pending piece of work — runnable instances, directed
    /// deliveries whose receiver is waiting, matchable channel queues,
    /// deferred subworkflow spawns — to a global fixpoint, partitioning
    /// instances across up to `shards` scoped worker threads by `assign`.
    ///
    /// The result is byte-identical for every shard count (including 1):
    /// cross-shard effects (spawns, parent completions) are deferred and
    /// resolved between rounds in canonical order, and every merged
    /// collection is canonically sorted. `assign` must be a pure function
    /// of the instance id.
    pub fn settle(
        &mut self,
        shards: usize,
        assign: &(dyn Fn(InstanceId) -> usize + Sync),
    ) -> Result<()> {
        let shards = shards.max(1);
        // Warm the persistent pool once: the dispatching thread works
        // too, so `shards` ways of parallelism need `shards - 1` helpers.
        // After this, no settle round ever spawns a thread.
        self.pool.ensure_workers(shards.saturating_sub(1));
        loop {
            self.apply_deferred()?;
            if self.global_match_possible() {
                // Global channel queues are engine-wide FIFO state: match
                // them sequentially (legacy semantics) before sharding.
                self.with_settle_ctx(exec::settle_slice)?;
                continue;
            }
            if !self.plan_round(shards, assign) {
                if self.vol.spawns.is_empty() && self.vol.parent_finishes.is_empty() {
                    return Ok(());
                }
                continue;
            }
            self.settle_round(shards, assign)?;
        }
    }

    /// Resolves deferred subworkflow spawns and parent completions in
    /// canonical `(parent, step)` order.
    fn apply_deferred(&mut self) -> Result<()> {
        let mut spawns = std::mem::take(&mut self.vol.spawns);
        let mut finishes = std::mem::take(&mut self.vol.parent_finishes);
        spawns.sort_by(|a, b| (a.parent, &a.step).cmp(&(b.parent, &b.step)));
        finishes.sort_by(|a, b| (a.parent, &a.step).cmp(&(b.parent, &b.step)));
        for sp in spawns {
            let wf = match self.db.get_type(&sp.workflow) {
                Ok(wf) => wf.clone(),
                Err(_) => {
                    let reason = format!(
                        "step `{}`: subworkflow type `{}` not in database",
                        sp.step, sp.workflow
                    );
                    self.with_ctx(|ctx| exec::fail_instance(ctx, sp.parent, reason))?;
                    continue;
                }
            };
            let child_id = self.db.allocate_instance_id();
            let mut child = WorkflowInstance::new(
                child_id,
                &wf,
                sp.vars,
                &sp.source,
                &sp.target,
                self.carry_types,
            );
            child.parent = Some((sp.parent, sp.step));
            self.db.put_instance(child);
            self.vol.stats.instances_created += 1;
            exec::record(&mut self.vol, self.now, child_id, HistoryKind::InstanceCreated);
            self.vol.runnable.push_back(child_id);
        }
        if !finishes.is_empty() {
            self.with_ctx(|ctx| {
                for pf in finishes {
                    exec::finish_parent(ctx, pf.parent, &pf.step, pf.vars, pf.failure)?;
                }
                Ok::<(), WfError>(())
            })?;
        }
        Ok(())
    }

    /// Whether any global channel queue holds a document a live waiter
    /// could consume.
    fn global_match_possible(&self) -> bool {
        self.vol.channel_queues.iter().any(|(channel, queue)| {
            !queue.is_empty()
                && self.vol.waiters.get(channel).is_some_and(|ws| {
                    ws.iter().any(|(inst, step)| {
                        self.db
                            .get_instance(*inst)
                            .map(|i| i.step_state(step) == StepState::Waiting)
                            .unwrap_or(false)
                    })
                })
        })
    }

    /// Plans one settle round in a single pass over the wakeable work:
    /// collects the touched set — instances that are runnable, or have a
    /// non-empty directed queue their receive step is waiting on — as
    /// sorted `(instance, shard)` pairs, and lays out one slice per busy
    /// shard in ascending shard order (the canonical merge order).
    /// Everything lands in reusable scratch buffers, so a steady-state
    /// round plans without touching the allocator. Returns whether the
    /// round has any work.
    ///
    /// This is the one place `assign` runs: the partition, the runnable
    /// distribution, and the queue moves in [`Engine::settle_round`] all
    /// resolve shards from the scratch instead of re-hashing (the old
    /// code rebuilt a `slice_index` map and re-ran `assign` three times
    /// per round).
    fn plan_round(&mut self, shards: usize, assign: &dyn Fn(InstanceId) -> usize) -> bool {
        let Engine { db, vol, scratch, settle_counters, .. } = self;
        scratch.touched.clear();
        for id in &vol.runnable {
            scratch.touched.push((*id, assign(*id) % shards));
        }
        for (id, qs) in &vol.directed_queues {
            let Ok(inst) = db.get_instance(*id) else { continue };
            if inst.status != InstanceStatus::Running {
                continue;
            }
            let wf = match &inst.carried_type {
                Some(t) => t,
                None => match db.get_type(&inst.type_id) {
                    Ok(wf) => wf,
                    Err(_) => continue,
                },
            };
            let waiting = wf.steps().iter().any(|s| {
                matches!(&s.kind, StepKind::Receive { channel: c, .. }
                    if qs.get(c).is_some_and(|q| !q.is_empty()))
                    && inst.step_state(&s.id) == StepState::Waiting
            });
            if waiting {
                scratch.touched.push((*id, assign(*id) % shards));
            }
        }
        scratch.touched.sort_unstable();
        scratch.touched.dedup();
        if scratch.touched.is_empty() {
            return false;
        }
        scratch.slice_of_shard.clear();
        scratch.slice_of_shard.resize(shards, usize::MAX);
        for &(_, shard) in &scratch.touched {
            scratch.slice_of_shard[shard] = 0;
        }
        let mut slices = 0;
        for entry in scratch.slice_of_shard.iter_mut() {
            if *entry != usize::MAX {
                *entry = slices;
                slices += 1;
            }
        }
        scratch.slices = slices;
        settle_counters.touched_last_round = scratch.touched.len() as u64;
        settle_counters.touched_total += scratch.touched.len() as u64;
        true
    }

    /// One parallel round: move the planned touched set — and nothing
    /// else — into per-busy-shard slices, settle each slice (on the
    /// persistent pool when more than one), and merge everything back
    /// canonically.
    ///
    /// Idle instances stay shard-resident: an instance outside the
    /// touched set cannot execute this round (it is not runnable, no
    /// directed document can wake it, global channels match between
    /// rounds, and spawns/parent completions defer), so leaving it — and
    /// its directed queues — in place is invisible to the merge. That is
    /// what makes a round's cost proportional to busy work instead of
    /// the live population.
    fn settle_round(
        &mut self,
        shards: usize,
        assign: &(dyn Fn(InstanceId) -> usize + Sync),
    ) -> Result<()> {
        if shards == 1 {
            // The single slice would be the entire database: settle it in
            // place instead of moving every instance out and back. Same
            // fresh volatile state, same canonical merge — only the move
            // of touched instances out of and back into the database
            // disappears.
            return self.settle_whole_engine_round();
        }
        // The scratch buffers leave `self` for the duration of the round
        // (the partition needs them alongside `&mut self.db`) and return
        // at the end, keeping their capacity for the next round.
        let touched = std::mem::take(&mut self.scratch.touched);
        let slice_of_shard = std::mem::take(&mut self.scratch.slice_of_shard);
        let mut slices: Vec<ShardSlice> =
            (0..self.scratch.slices).map(|_| ShardSlice::default()).collect();

        let mut moved = 0u64;
        if self.full_partition {
            // Reference mode: the pre-touched-set partition. Every
            // instance and directed queue of a busy shard moves into its
            // slice, everything else is reinserted — O(live instances).
            let (_, instances, _) = self.db.split_mut();
            let all = std::mem::take(instances);
            for (id, inst) in all {
                match slice_of_shard[assign(id) % shards] {
                    usize::MAX => {
                        instances.insert(id, inst);
                    }
                    k => {
                        slices[k].instances.insert(id, inst);
                        moved += 1;
                    }
                }
            }
            for (id, qs) in std::mem::take(&mut self.vol.directed_queues) {
                match slice_of_shard[assign(id) % shards] {
                    usize::MAX => {
                        self.vol.directed_queues.insert(id, qs);
                    }
                    k => {
                        slices[k].vol.directed_queues.insert(id, qs);
                    }
                }
            }
        } else {
            // Touched-only: lift exactly the planned instances, each with
            // its whole directed-queue set — a runnable instance may reach
            // a receive mid-round and must see documents queued before it.
            let (_, instances, _) = self.db.split_mut();
            for &(id, shard) in &touched {
                let k = slice_of_shard[shard];
                if let Some(inst) = instances.remove(&id) {
                    slices[k].instances.insert(id, inst);
                    moved += 1;
                }
                if let Some(qs) = self.vol.directed_queues.remove(&id) {
                    slices[k].vol.directed_queues.insert(id, qs);
                }
            }
        }
        self.settle_counters.moved_last_round = moved;
        self.settle_counters.moved_total += moved;
        self.settle_counters.rounds += 1;
        for id in std::mem::take(&mut self.vol.runnable) {
            // Every runnable id is in the touched set by construction
            // (stale ids included — their slice yields the UnknownInstance
            // error exactly as the unsharded engine would).
            let at = touched.partition_point(|&(i, _)| i < id);
            let k = slice_of_shard[touched[at].1];
            slices[k].vol.runnable.push_back(id);
        }

        // Execute on the persistent pool: each slice is one task, claimed
        // by exactly one thread (the dispatcher participates), results
        // written into its own cell. Which thread ran a slice is
        // invisible after the merge below.
        let cells: Vec<SliceCell> =
            slices.into_iter().map(|s| SliceCell(std::cell::UnsafeCell::new((s, None)))).collect();
        {
            let env = ExecEnv {
                types: self.db.types_map(),
                activities: &self.activities,
                rules: &self.rules,
                transforms: &self.transforms,
                carry_types: self.carry_types,
                now: self.now,
            };
            let chunk = self.steal_chunk.unwrap_or(1);
            self.pool.run(cells.len(), chunk, &|k| {
                // SAFETY: the pool claims each index exactly once, so
                // this &mut access to cell `k` is exclusive.
                let (slice, result) = unsafe { &mut *cells[k].0.get() };
                let mut ctx = ExecCtx {
                    env: &env,
                    instances: &mut slice.instances,
                    ids: None,
                    vol: &mut slice.vol,
                };
                *result = Some(exec::settle_slice(&mut ctx));
            });
        }

        let merged = self.merge_round(cells.into_iter().map(|cell| cell.0.into_inner()).collect());
        self.scratch.touched = touched;
        self.scratch.slice_of_shard = slice_of_shard;
        merged
    }

    /// Settles the degenerate one-shard round without partitioning: the
    /// executor borrows the database's instance map directly and writes
    /// into a fresh [`VolatileState`], so the byte-for-byte computation is
    /// identical to a one-slice [`Engine::settle_round`] minus the move of
    /// every live instance out of and back into the database.
    fn settle_whole_engine_round(&mut self) -> Result<()> {
        self.settle_counters.moved_last_round = 0;
        self.settle_counters.rounds += 1;
        let mut slice = ShardSlice::default();
        slice.vol.runnable = std::mem::take(&mut self.vol.runnable);
        slice.vol.directed_queues = std::mem::take(&mut self.vol.directed_queues);
        let result = {
            let Engine { db, activities, rules, transforms, carry_types, now, .. } = &mut *self;
            let (types, instances, _) = db.split_mut();
            let env = ExecEnv {
                types,
                activities,
                rules,
                transforms,
                carry_types: *carry_types,
                now: *now,
            };
            let mut ctx = ExecCtx { env: &env, instances, ids: None, vol: &mut slice.vol };
            exec::settle_slice(&mut ctx)
        };
        self.merge_round(vec![(slice, Some(result))])
    }

    /// Merge canonically — in slice (shard) order, never claim order: the
    /// merged state must not depend on how instances were partitioned or
    /// which thread settled them.
    fn merge_round(&mut self, settled: Vec<(ShardSlice, Option<Result<()>>)>) -> Result<()> {
        let mut first_err = None;
        let mut history_segment = Vec::new();
        let mut new_waiters: BTreeMap<ChannelId, Vec<(InstanceId, StepId)>> = BTreeMap::new();
        for (slice, result) in settled {
            let result = result.expect("pool ran every slice");
            if let Err(e) = result {
                first_err.get_or_insert(e);
            }
            for (_, inst) in slice.instances {
                self.db.put_instance(inst);
            }
            let v = slice.vol;
            for (id, mut qs) in v.directed_queues {
                // Drained queues die here, so the resident map holds only
                // instances with documents actually pending — the next
                // round's plan scans pending work, not history.
                qs.retain(|_, queue| !queue.is_empty());
                if !qs.is_empty() {
                    self.vol.directed_queues.insert(id, qs);
                }
            }
            for (channel, ws) in v.waiters {
                new_waiters.entry(channel).or_default().extend(ws);
            }
            for (channel, queue) in v.channel_queues {
                if !queue.is_empty() {
                    self.vol.channel_queues.entry(channel).or_default().extend(queue);
                }
            }
            self.vol.outbox.extend(v.outbox);
            self.vol.timers.extend(v.timers);
            self.vol.remote_requests.extend(v.remote_requests);
            self.vol.runnable.extend(v.runnable);
            self.vol.spawns.extend(v.spawns);
            self.vol.parent_finishes.extend(v.parent_finishes);
            self.vol.stats.absorb(&v.stats);
            self.vol.touched.extend(v.touched);
            history_segment.extend(v.history);
        }
        // Instances live wholly in one slice, so a stable sort by
        // (time, instance) preserves per-instance causality while fixing
        // a canonical cross-instance order.
        history_segment.sort_by_key(|e| (e.at, e.instance));
        self.vol.history.extend(history_segment);
        // New waiter registrations: each receive step registers at most
        // once, so the set is partition-independent; sorting makes the
        // order canonical too.
        for (channel, mut ws) in new_waiters {
            ws.sort();
            self.vol.waiters.entry(channel).or_default().extend(ws);
        }
        self.vol.timers.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        self.vol
            .remote_requests
            .sort_by(|a, b| (a.parent_instance, &a.step).cmp(&(b.parent_instance, &b.step)));
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Migration support (used by federation).

    /// Serializes an instance and removes it from this engine (Figure 5(a):
    /// "stored in two different workflow engine databases at two different
    /// points in time").
    pub fn export_instance(&mut self, id: InstanceId) -> Result<String> {
        let inst = self.db.take_instance(id)?;
        if inst.parent.is_some() {
            let err = WfError::Federation {
                reason: format!("instance {id} is a subworkflow; migrate the parent"),
            };
            self.db.put_instance(inst);
            return Err(err);
        }
        exec::record(&mut self.vol, self.now, id, HistoryKind::MigratedOut(String::new()));
        serde_json::to_string(&inst).map_err(|e| WfError::Snapshot { reason: e.to_string() })
    }

    /// Imports a serialized instance under a fresh local id. Fails when
    /// this engine lacks the instance's workflow type (unless the instance
    /// carries its type with it).
    pub fn import_instance(&mut self, snapshot: &str) -> Result<InstanceId> {
        let mut inst: WorkflowInstance = serde_json::from_str(snapshot)
            .map_err(|e| WfError::Snapshot { reason: e.to_string() })?;
        if inst.carried_type.is_none() && !self.db.has_type(&inst.type_id) {
            return Err(WfError::UnknownType { workflow: inst.type_id.to_string() });
        }
        let id = self.db.allocate_instance_id();
        inst.id = id;
        // Re-register channel waiters for receive steps that were waiting
        // when the instance left its previous engine — waiter registrations
        // are engine-local and do not travel with the snapshot.
        let wf = if let Some(t) = &inst.carried_type {
            t.clone()
        } else {
            self.db.get_type(&inst.type_id)?.clone()
        };
        for step in wf.steps() {
            if inst.step_state(&step.id) == StepState::Waiting {
                if let StepKind::Receive { channel, .. } = &step.kind {
                    self.vol
                        .waiters
                        .entry(channel.clone())
                        .or_default()
                        .push_back((id, step.id.clone()));
                }
            }
        }
        self.db.put_instance(inst);
        exec::record(&mut self.vol, self.now, id, HistoryKind::MigratedIn(String::new()));
        Ok(id)
    }

    /// Serializes the whole workflow database (crash-recovery point:
    /// "at any point in time a workflow instance is either persisted in
    /// the database or in state transition in the workflow engine",
    /// Section 2.1). Volatile engine state — channel queues, timers,
    /// outbox — is NOT part of the database, matching the paper's
    /// architecture where only the database survives an engine restart.
    pub fn snapshot_database(&self) -> Result<String> {
        self.db.snapshot()
    }

    /// Rebuilds an engine's database from a snapshot, re-registering
    /// channel waiters for every receive step that was waiting when the
    /// snapshot was taken, so deliveries resume after a restart.
    /// Activities, rules, and transformations must be re-installed by the
    /// host (they are code, not data — exactly why the paper's engines
    /// need "all the relevant workflow step types available").
    pub fn restore_database(&mut self, snapshot: &str) -> Result<()> {
        let db = WorkflowDatabase::restore(snapshot)?;
        self.db = db;
        self.vol.waiters.clear();
        self.vol.channel_queues.clear();
        self.vol.directed_queues.clear();
        self.vol.timers.clear();
        for id in self.db.instance_ids() {
            let inst = self.db.get_instance(id)?;
            if inst.status != InstanceStatus::Running {
                continue;
            }
            // Owned copy: the Cow would pin `&self` across the waiter
            // mutations below (cold path, one clone per restart is fine).
            let wf = self.type_for(inst)?.into_owned();
            for step in wf.steps() {
                if inst.step_state(&step.id) == StepState::Waiting {
                    if let StepKind::Receive { channel, .. } = &step.kind {
                        self.vol
                            .waiters
                            .entry(channel.clone())
                            .or_default()
                            .push_back((id, step.id.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    /// The workflow type needed to run `snapshot`, if the engine must
    /// fetch it (Figure 6, step ①).
    pub fn required_type_of(snapshot: &str) -> Result<Option<WorkflowTypeId>> {
        let inst: WorkflowInstance = serde_json::from_str(snapshot)
            .map_err(|e| WfError::Snapshot { reason: e.to_string() })?;
        Ok(if inst.carried_type.is_some() { None } else { Some(inst.type_id) })
    }

    /// Resolves a remote subworkflow (called by federation with the
    /// results from the remote engine).
    pub fn resolve_remote(
        &mut self,
        parent_instance: InstanceId,
        step: &StepId,
        vars: BTreeMap<String, Variable>,
        failure: Option<String>,
    ) -> Result<()> {
        self.with_ctx(|ctx| {
            exec::finish_parent(ctx, parent_instance, step, vars, failure)?;
            exec::drain_runnable(ctx)
        })
    }

    // ------------------------------------------------------------------
    // Internals.

    /// Builds a sequential execution context over disjoint borrows of the
    /// engine's fields (legacy semantics: subworkflows spawn inline).
    fn with_ctx<R>(&mut self, f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let Engine { db, activities, rules, transforms, vol, carry_types, now, .. } = self;
        let (types, instances, next_instance) = db.split_mut();
        let env =
            ExecEnv { types, activities, rules, transforms, carry_types: *carry_types, now: *now };
        let mut ctx = ExecCtx { env: &env, instances, ids: Some(next_instance), vol };
        f(&mut ctx)
    }

    /// Like [`Engine::with_ctx`] but in settle mode: subworkflow spawns
    /// and parent completions defer, exactly as in parallel slices, so
    /// sequential and sharded settling stay step-for-step identical.
    fn with_settle_ctx<R>(&mut self, f: impl FnOnce(&mut ExecCtx<'_>) -> R) -> R {
        let Engine { db, activities, rules, transforms, vol, carry_types, now, .. } = self;
        let (types, instances, _) = db.split_mut();
        let env =
            ExecEnv { types, activities, rules, transforms, carry_types: *carry_types, now: *now };
        let mut ctx = ExecCtx { env: &env, instances, ids: None, vol };
        f(&mut ctx)
    }

    /// Borrows the type from the database on the common path (see
    /// [`exec::type_for`] for the carry-mode exception).
    fn type_for(&self, inst: &WorkflowInstance) -> Result<std::borrow::Cow<'_, WorkflowType>> {
        if let Some(t) = &inst.carried_type {
            Ok(std::borrow::Cow::Owned(t.clone()))
        } else {
            self.db.get_type(&inst.type_id).map(std::borrow::Cow::Borrowed)
        }
    }
}
