//! The workflow engine: an interpreter for workflow instances.

pub mod instance;

#[cfg(test)]
mod tests;

pub use instance::{EdgeState, InstanceStatus, StepState, Variable, WorkflowInstance};

use crate::db::WorkflowDatabase;
use crate::error::{Result, WfError};
use crate::federation::EngineId;
use crate::history::{HistoryEvent, HistoryKind};
use crate::model::{
    ChannelId, InstanceId, StepDef, StepId, StepKind, WorkflowType, WorkflowTypeId,
};
use b2b_document::Document;
use b2b_network::SimTime;
use b2b_rules::{RuleError, RuleRegistry};
use b2b_transform::{TransformContext, TransformRegistry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Context handed to an [`Activity`] implementation.
pub struct ActivityContext<'a> {
    /// Instance variables (read and write).
    pub vars: &'a mut BTreeMap<String, Variable>,
    /// Rule-context source.
    pub source: &'a str,
    /// Rule-context target.
    pub target: &'a str,
    /// Current logical time.
    pub now: SimTime,
}

impl ActivityContext<'_> {
    /// Reads a document variable.
    pub fn document(&self, var: &str) -> std::result::Result<&Document, String> {
        match self.vars.get(var) {
            Some(Variable::Document(d)) => Ok(d),
            Some(Variable::Value(v)) => {
                Err(format!("variable `{var}` holds a {} value", v.type_name()))
            }
            None => Err(format!("variable `{var}` is not set")),
        }
    }

    /// Writes a document variable.
    pub fn set_document(&mut self, var: &str, doc: Document) {
        self.vars.insert(var.to_string(), Variable::Document(doc));
    }

    /// Writes a value variable.
    pub fn set_value(&mut self, var: &str, value: b2b_document::Value) {
        self.vars.insert(var.to_string(), Variable::Value(value));
    }
}

/// An externally implemented step behaviour (ERP store/extract, approval,
/// audit, …). Registered with the engine by name; workflow types only
/// carry the name.
pub trait Activity: Send + Sync {
    /// Executes the activity; an `Err` fails the step (and the instance).
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> std::result::Result<(), String>;
}

impl<F> Activity for F
where
    F: Fn(&mut ActivityContext<'_>) -> std::result::Result<(), String> + Send + Sync,
{
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> std::result::Result<(), String> {
        self(ctx)
    }
}

/// A subworkflow delegated to a remote engine, awaiting federation pickup.
#[derive(Debug, Clone)]
pub struct RemoteSubRequest {
    /// Parent instance on this engine.
    pub parent_instance: InstanceId,
    /// The waiting subworkflow step.
    pub step: StepId,
    /// Engine the subworkflow should run on.
    pub engine: EngineId,
    /// Subworkflow type.
    pub workflow: WorkflowTypeId,
    /// Variable snapshot handed to the remote instance.
    pub vars: BTreeMap<String, Variable>,
    /// Rule-context source.
    pub source: String,
    /// Rule-context target.
    pub target: String,
}

/// Engine counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instances created (including subworkflows).
    pub instances_created: u64,
    /// Steps executed to completion.
    pub steps_executed: u64,
    /// Documents emitted through send steps.
    pub sends: u64,
    /// Documents consumed by receive steps.
    pub receives: u64,
    /// Rule-function invocations.
    pub rule_invocations: u64,
    /// Transformations applied by transform steps.
    pub transforms: u64,
}

enum ExecOutcome {
    Completed,
    Waiting,
    Failed(String),
}

/// The workflow engine (Figure 4): database, activity registry, rule and
/// transformation registries, channels, timers, and an outbox the host
/// drains.
pub struct Engine {
    id: EngineId,
    now: SimTime,
    db: WorkflowDatabase,
    activities: BTreeMap<String, Arc<dyn Activity>>,
    rules: RuleRegistry,
    transforms: TransformRegistry,
    channel_queues: BTreeMap<ChannelId, VecDeque<Document>>,
    directed_queues: BTreeMap<(InstanceId, ChannelId), VecDeque<Document>>,
    waiters: BTreeMap<ChannelId, VecDeque<(InstanceId, StepId)>>,
    outbox: Vec<(InstanceId, ChannelId, Document)>,
    timers: Vec<(SimTime, InstanceId, StepId)>,
    remote_requests: Vec<RemoteSubRequest>,
    runnable: VecDeque<InstanceId>,
    history: Vec<HistoryEvent>,
    carry_types: bool,
    stats: EngineStats,
}

impl Engine {
    /// Creates an engine.
    pub fn new(id: EngineId) -> Self {
        Self {
            id,
            now: SimTime::ZERO,
            db: WorkflowDatabase::new(),
            activities: BTreeMap::new(),
            rules: RuleRegistry::new(),
            transforms: TransformRegistry::new(),
            channel_queues: BTreeMap::new(),
            directed_queues: BTreeMap::new(),
            waiters: BTreeMap::new(),
            outbox: Vec::new(),
            timers: Vec::new(),
            remote_requests: Vec::new(),
            runnable: VecDeque::new(),
            history: Vec::new(),
            carry_types: false,
            stats: EngineStats::default(),
        }
    }

    /// Engine id.
    pub fn id(&self) -> &EngineId {
        &self.id
    }

    /// Switches to carry-type-in-instance mode (Section 2.1 trade-off;
    /// ablated by the migration bench).
    pub fn set_carry_types(&mut self, carry: bool) {
        self.carry_types = carry;
    }

    /// The workflow database.
    pub fn db(&self) -> &WorkflowDatabase {
        &self.db
    }

    /// Mutable database access (used by federation for type migration).
    pub fn db_mut(&mut self) -> &mut WorkflowDatabase {
        &mut self.db
    }

    /// Counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Audit history.
    pub fn history(&self) -> &[HistoryEvent] {
        &self.history
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers an activity implementation.
    pub fn register_activity(&mut self, name: &str, activity: Arc<dyn Activity>) {
        self.activities.insert(name.to_string(), activity);
    }

    /// The rule registry (the paper's externalized business rules).
    pub fn rules(&self) -> &RuleRegistry {
        &self.rules
    }

    /// Mutable rule registry (changing partner rules touches nothing else).
    pub fn rules_mut(&mut self) -> &mut RuleRegistry {
        &mut self.rules
    }

    /// Installs the rule registry.
    pub fn set_rules(&mut self, rules: RuleRegistry) {
        self.rules = rules;
    }

    /// Installs the transformation registry.
    pub fn set_transforms(&mut self, transforms: TransformRegistry) {
        self.transforms = transforms;
    }

    /// The transformation registry.
    pub fn transforms(&self) -> &TransformRegistry {
        &self.transforms
    }

    /// Deploys a workflow type.
    pub fn deploy(&mut self, wf: WorkflowType) {
        self.db.put_type(wf);
    }

    /// Creates an instance; `source`/`target` seed the rule context.
    pub fn create_instance(
        &mut self,
        type_id: &WorkflowTypeId,
        vars: BTreeMap<String, Variable>,
        source: &str,
        target: &str,
    ) -> Result<InstanceId> {
        let wf = self.db.get_type(type_id)?.clone();
        let id = self.db.allocate_instance_id();
        let inst = WorkflowInstance::new(id, &wf, vars, source, target, self.carry_types);
        self.db.put_instance(inst);
        self.stats.instances_created += 1;
        self.record(id, HistoryKind::InstanceCreated);
        Ok(id)
    }

    /// Runs an instance (and everything it makes runnable) until blocked,
    /// completed, or failed.
    pub fn run(&mut self, id: InstanceId) -> Result<InstanceStatus> {
        self.runnable.push_back(id);
        self.drain_runnable()?;
        self.status(id)
    }

    /// Status of an instance.
    pub fn status(&self, id: InstanceId) -> Result<InstanceStatus> {
        Ok(self.db.get_instance(id)?.status.clone())
    }

    /// Reads an instance variable (for assertions and hosts).
    pub fn variable(&self, id: InstanceId, var: &str) -> Result<Variable> {
        Ok(self.db.get_instance(id)?.var(var)?.clone())
    }

    /// Delivers a document to a channel; a waiting receive step consumes
    /// it (FIFO), otherwise it queues until one does.
    pub fn deliver(&mut self, channel: &ChannelId, doc: Document) -> Result<()> {
        self.channel_queues.entry(channel.clone()).or_default().push_back(doc);
        self.match_waiters(channel)?;
        self.drain_runnable()
    }

    /// Delivers a document to one specific instance's receive step on
    /// `channel` (hosts use this for session-scoped routing between
    /// public processes, bindings, and private processes). If the
    /// instance is not yet waiting there, the document queues until its
    /// receive step executes.
    pub fn deliver_to(
        &mut self,
        instance: InstanceId,
        channel: &ChannelId,
        doc: Document,
    ) -> Result<()> {
        let waiting = self
            .db
            .get_instance(instance)
            .map(|i| i.status == InstanceStatus::Running)
            .unwrap_or(false);
        if !waiting {
            return Err(WfError::Channel {
                channel: channel.to_string(),
                reason: format!("instance {instance} is not running"),
            });
        }
        // Find whether the instance is currently waiting on this channel.
        let step_waiting = {
            let inst = self.db.get_instance(instance)?;
            let wf = self.type_for(inst)?;
            wf.steps()
                .iter()
                .find(|s| {
                    matches!(&s.kind, StepKind::Receive { channel: c, .. } if c == channel)
                        && inst.step_state(&s.id) == StepState::Waiting
                })
                .map(|s| s.id.clone())
        };
        match step_waiting {
            Some(step_id) => {
                let wf = self.type_for(self.db.get_instance(instance)?)?;
                let var = match &wf.step(&step_id)?.kind {
                    StepKind::Receive { var, .. } => var.clone(),
                    _ => unreachable!("matched receive above"),
                };
                // Drop the stale global waiter entry for this instance.
                if let Some(q) = self.waiters.get_mut(channel) {
                    q.retain(|(i, s)| !(*i == instance && *s == step_id));
                }
                let mut inst = self.db.take_instance(instance)?;
                inst.vars.insert(var, Variable::Document(doc));
                self.stats.receives += 1;
                self.record(instance, HistoryKind::Delivered(step_id.clone()));
                self.finish_step_and_resume(inst, &step_id)?;
                self.drain_runnable()
            }
            None => {
                self.directed_queues.entry((instance, channel.clone())).or_default().push_back(doc);
                Ok(())
            }
        }
    }

    /// Takes everything send steps have emitted, tagged with the emitting
    /// instance so hosts can route per session.
    pub fn drain_outbox(&mut self) -> Vec<(InstanceId, ChannelId, Document)> {
        std::mem::take(&mut self.outbox)
    }

    /// Takes pending remote-subworkflow requests (federation calls this).
    pub fn drain_remote_requests(&mut self) -> Vec<RemoteSubRequest> {
        std::mem::take(&mut self.remote_requests)
    }

    /// Advances logical time and fires due timers.
    pub fn advance_time(&mut self, now: SimTime) -> Result<()> {
        self.now = now;
        let mut due = Vec::new();
        self.timers.retain(|(at, inst, step)| {
            if *at <= now {
                due.push((*inst, step.clone()));
                false
            } else {
                true
            }
        });
        for (inst_id, step_id) in due {
            self.complete_waiting_step(inst_id, &step_id)?;
        }
        self.drain_runnable()
    }

    /// Whether any instance is blocked (running but not finished).
    pub fn blocked_instances(&self) -> Vec<InstanceId> {
        self.db
            .instance_ids()
            .into_iter()
            .filter(|id| {
                self.db
                    .get_instance(*id)
                    .map(|i| i.status == InstanceStatus::Running && !i.all_steps_resolved())
                    .unwrap_or(false)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Migration support (used by federation).

    /// Serializes an instance and removes it from this engine (Figure 5(a):
    /// "stored in two different workflow engine databases at two different
    /// points in time").
    pub fn export_instance(&mut self, id: InstanceId) -> Result<String> {
        let inst = self.db.take_instance(id)?;
        if inst.parent.is_some() {
            let err = WfError::Federation {
                reason: format!("instance {id} is a subworkflow; migrate the parent"),
            };
            self.db.put_instance(inst);
            return Err(err);
        }
        self.record(id, HistoryKind::MigratedOut(String::new()));
        serde_json::to_string(&inst).map_err(|e| WfError::Snapshot { reason: e.to_string() })
    }

    /// Imports a serialized instance under a fresh local id. Fails when
    /// this engine lacks the instance's workflow type (unless the instance
    /// carries its type with it).
    pub fn import_instance(&mut self, snapshot: &str) -> Result<InstanceId> {
        let mut inst: WorkflowInstance = serde_json::from_str(snapshot)
            .map_err(|e| WfError::Snapshot { reason: e.to_string() })?;
        if inst.carried_type.is_none() && !self.db.has_type(&inst.type_id) {
            return Err(WfError::UnknownType { workflow: inst.type_id.to_string() });
        }
        let id = self.db.allocate_instance_id();
        inst.id = id;
        // Re-register channel waiters for receive steps that were waiting
        // when the instance left its previous engine — waiter registrations
        // are engine-local and do not travel with the snapshot.
        let wf = if let Some(t) = &inst.carried_type {
            t.clone()
        } else {
            self.db.get_type(&inst.type_id)?.clone()
        };
        for step in wf.steps() {
            if inst.step_state(&step.id) == StepState::Waiting {
                if let StepKind::Receive { channel, .. } = &step.kind {
                    self.waiters
                        .entry(channel.clone())
                        .or_default()
                        .push_back((id, step.id.clone()));
                }
            }
        }
        self.db.put_instance(inst);
        self.record(id, HistoryKind::MigratedIn(String::new()));
        Ok(id)
    }

    /// Serializes the whole workflow database (crash-recovery point:
    /// "at any point in time a workflow instance is either persisted in
    /// the database or in state transition in the workflow engine",
    /// Section 2.1). Volatile engine state — channel queues, timers,
    /// outbox — is NOT part of the database, matching the paper's
    /// architecture where only the database survives an engine restart.
    pub fn snapshot_database(&self) -> Result<String> {
        self.db.snapshot()
    }

    /// Rebuilds an engine's database from a snapshot, re-registering
    /// channel waiters for every receive step that was waiting when the
    /// snapshot was taken, so deliveries resume after a restart.
    /// Activities, rules, and transformations must be re-installed by the
    /// host (they are code, not data — exactly why the paper's engines
    /// need "all the relevant workflow step types available").
    pub fn restore_database(&mut self, snapshot: &str) -> Result<()> {
        let db = WorkflowDatabase::restore(snapshot)?;
        self.db = db;
        self.waiters.clear();
        self.channel_queues.clear();
        self.directed_queues.clear();
        self.timers.clear();
        for id in self.db.instance_ids() {
            let inst = self.db.get_instance(id)?;
            if inst.status != InstanceStatus::Running {
                continue;
            }
            let wf = self.type_for(inst)?;
            for step in wf.steps() {
                if inst.step_state(&step.id) == StepState::Waiting {
                    if let StepKind::Receive { channel, .. } = &step.kind {
                        self.waiters
                            .entry(channel.clone())
                            .or_default()
                            .push_back((id, step.id.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    /// The workflow type needed to run `snapshot`, if the engine must
    /// fetch it (Figure 6, step ①).
    pub fn required_type_of(snapshot: &str) -> Result<Option<WorkflowTypeId>> {
        let inst: WorkflowInstance = serde_json::from_str(snapshot)
            .map_err(|e| WfError::Snapshot { reason: e.to_string() })?;
        Ok(if inst.carried_type.is_some() { None } else { Some(inst.type_id) })
    }

    // ------------------------------------------------------------------
    // Internals.

    fn record(&mut self, instance: InstanceId, kind: HistoryKind) {
        self.history.push(HistoryEvent { at: self.now, instance, kind });
    }

    fn drain_runnable(&mut self) -> Result<()> {
        while let Some(id) = self.runnable.pop_front() {
            self.run_one(id)?;
        }
        Ok(())
    }

    fn type_for(&self, inst: &WorkflowInstance) -> Result<WorkflowType> {
        if let Some(t) = &inst.carried_type {
            Ok(t.clone())
        } else {
            self.db.get_type(&inst.type_id).cloned()
        }
    }

    fn run_one(&mut self, id: InstanceId) -> Result<()> {
        let mut inst = self.db.take_instance(id)?;
        if inst.status != InstanceStatus::Running {
            self.db.put_instance(inst);
            return Ok(());
        }
        let wf = match self.type_for(&inst) {
            Ok(wf) => wf,
            Err(e) => {
                self.db.put_instance(inst);
                return Err(e);
            }
        };
        loop {
            if inst.status != InstanceStatus::Running {
                break;
            }
            let mut progressed = false;
            for step in wf.steps() {
                if inst.step_state(&step.id) != StepState::Pending {
                    continue;
                }
                let incoming = wf.incoming(&step.id);
                let resolved =
                    incoming.iter().all(|i| inst.edge_states[*i] != EdgeState::Unresolved);
                if !resolved {
                    continue;
                }
                let has_token = incoming.is_empty()
                    || incoming.iter().any(|i| inst.edge_states[*i] == EdgeState::Taken);
                if !has_token {
                    // Dead path: skip and kill outgoing edges.
                    inst.step_states.insert(step.id.clone(), StepState::Skipped);
                    for i in wf.outgoing(&step.id) {
                        inst.edge_states[i] = EdgeState::Dead;
                    }
                    self.record(id, HistoryKind::StepSkipped(step.id.clone()));
                    progressed = true;
                    continue;
                }
                progressed = true;
                match self.execute_step(&mut inst, step) {
                    ExecOutcome::Completed => {
                        self.stats.steps_executed += 1;
                        if let Err(reason) = mark_completed(&mut inst, &wf, &step.id) {
                            inst.status = InstanceStatus::Failed(reason.clone());
                            self.record(id, HistoryKind::InstanceFailed(reason));
                            break;
                        }
                        self.record(id, HistoryKind::StepCompleted(step.id.clone()));
                    }
                    ExecOutcome::Waiting => {
                        inst.step_states.insert(step.id.clone(), StepState::Waiting);
                        self.record(id, HistoryKind::StepWaiting(step.id.clone()));
                    }
                    ExecOutcome::Failed(reason) => {
                        let reason = format!("step `{}`: {reason}", step.id);
                        inst.status = InstanceStatus::Failed(reason.clone());
                        self.record(id, HistoryKind::InstanceFailed(reason));
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        if inst.status == InstanceStatus::Running && inst.all_steps_resolved() {
            inst.status = InstanceStatus::Completed;
            self.record(id, HistoryKind::InstanceCompleted);
        }
        let status = inst.status.clone();
        let parent = inst.parent.clone();
        let vars = inst.vars.clone();
        self.db.put_instance(inst);
        if let Some((parent_id, parent_step)) = parent {
            match status {
                InstanceStatus::Completed => {
                    self.finish_parent(parent_id, &parent_step, vars, None)?;
                }
                InstanceStatus::Failed(reason) => {
                    self.finish_parent(parent_id, &parent_step, BTreeMap::new(), Some(reason))?;
                }
                InstanceStatus::Running => {}
            }
        }
        Ok(())
    }

    fn execute_step(&mut self, inst: &mut WorkflowInstance, step: &StepDef) -> ExecOutcome {
        match &step.kind {
            StepKind::NoOp => ExecOutcome::Completed,
            StepKind::Activity { activity } => {
                let Some(implementation) = self.activities.get(activity).cloned() else {
                    return ExecOutcome::Failed(format!("unknown activity `{activity}`"));
                };
                let mut ctx = ActivityContext {
                    vars: &mut inst.vars,
                    source: &inst.source,
                    target: &inst.target,
                    now: self.now,
                };
                match implementation.execute(&mut ctx) {
                    Ok(()) => ExecOutcome::Completed,
                    Err(reason) => ExecOutcome::Failed(reason),
                }
            }
            StepKind::RuleCheck { function, doc_var, out_var } => {
                self.stats.rule_invocations += 1;
                let doc = match inst.vars.get(doc_var) {
                    Some(Variable::Document(d)) => d.clone(),
                    _ => {
                        return ExecOutcome::Failed(format!(
                            "rule check needs document variable `{doc_var}`"
                        ))
                    }
                };
                match self.rules.invoke(function, &inst.source, &inst.target, &doc) {
                    Ok(value) => {
                        inst.vars.insert(out_var.clone(), Variable::Value(value));
                        ExecOutcome::Completed
                    }
                    Err(e @ RuleError::NoRuleApplies { .. }) => {
                        // The paper's explicit error case.
                        ExecOutcome::Failed(e.to_string())
                    }
                    Err(e) => ExecOutcome::Failed(e.to_string()),
                }
            }
            StepKind::Transform { target_format, var, out_var } => {
                self.stats.transforms += 1;
                let doc = match inst.vars.get(var) {
                    Some(Variable::Document(d)) => d.clone(),
                    _ => {
                        return ExecOutcome::Failed(format!(
                            "transform needs document variable `{var}`"
                        ))
                    }
                };
                // Direction-aware context: a document leaving the
                // normalized format is outbound, so the enterprise
                // (rule-context target) is the wire-level sender.
                let outbound = doc.format() == &b2b_document::FormatId::NORMALIZED;
                let (sender, receiver) = if outbound {
                    (inst.target.as_str(), inst.source.as_str())
                } else {
                    (inst.source.as_str(), inst.target.as_str())
                };
                let ctx = TransformContext::new(
                    sender,
                    receiver,
                    &format!("{:09}", inst.id.value()),
                    &format!("i-{}", inst.id.value()),
                );
                match self.transforms.transform(&doc, target_format, &ctx) {
                    Ok(out) => {
                        inst.vars.insert(out_var.clone(), Variable::Document(out));
                        ExecOutcome::Completed
                    }
                    Err(e) => ExecOutcome::Failed(e.to_string()),
                }
            }
            StepKind::Send { channel, var } => {
                let doc = match inst.vars.get(var) {
                    Some(Variable::Document(d)) => d.clone(),
                    _ => {
                        return ExecOutcome::Failed(format!("send needs document variable `{var}`"))
                    }
                };
                self.stats.sends += 1;
                self.outbox.push((inst.id, channel.clone(), doc));
                ExecOutcome::Completed
            }
            StepKind::Receive { channel, var } => {
                let directed = self
                    .directed_queues
                    .get_mut(&(inst.id, channel.clone()))
                    .and_then(VecDeque::pop_front);
                if let Some(doc) = directed
                    .or_else(|| self.channel_queues.get_mut(channel).and_then(VecDeque::pop_front))
                {
                    self.stats.receives += 1;
                    inst.vars.insert(var.clone(), Variable::Document(doc));
                    ExecOutcome::Completed
                } else {
                    self.waiters
                        .entry(channel.clone())
                        .or_default()
                        .push_back((inst.id, step.id.clone()));
                    ExecOutcome::Waiting
                }
            }
            StepKind::Timer { delay_ms } => {
                self.timers.push((self.now + *delay_ms, inst.id, step.id.clone()));
                ExecOutcome::Waiting
            }
            StepKind::Subworkflow { workflow, remote } => {
                if let Some(engine) = remote {
                    self.remote_requests.push(RemoteSubRequest {
                        parent_instance: inst.id,
                        step: step.id.clone(),
                        engine: engine.clone(),
                        workflow: workflow.clone(),
                        vars: inst.vars.clone(),
                        source: inst.source.clone(),
                        target: inst.target.clone(),
                    });
                    return ExecOutcome::Waiting;
                }
                let sub_wf = match self.db.get_type(workflow) {
                    Ok(wf) => wf.clone(),
                    Err(_) => {
                        return ExecOutcome::Failed(format!(
                            "subworkflow type `{workflow}` not in database"
                        ))
                    }
                };
                let child_id = self.db.allocate_instance_id();
                let mut child = WorkflowInstance::new(
                    child_id,
                    &sub_wf,
                    inst.vars.clone(),
                    &inst.source,
                    &inst.target,
                    self.carry_types,
                );
                child.parent = Some((inst.id, step.id.clone()));
                self.db.put_instance(child);
                self.stats.instances_created += 1;
                self.record(child_id, HistoryKind::InstanceCreated);
                self.runnable.push_back(child_id);
                // Subworkflows return control ONLY on completion
                // (Section 3.1) — the parent step waits.
                ExecOutcome::Waiting
            }
        }
    }

    fn match_waiters(&mut self, channel: &ChannelId) -> Result<()> {
        loop {
            let queue_len = self.channel_queues.get(channel).map(VecDeque::len).unwrap_or(0);
            if queue_len == 0 {
                return Ok(());
            }
            let Some((inst_id, step_id)) =
                self.waiters.get_mut(channel).and_then(VecDeque::pop_front)
            else {
                return Ok(());
            };
            // Stale waiter (instance failed or was migrated): drop it.
            let Ok(inst) = self.db.get_instance(inst_id) else { continue };
            if inst.step_state(&step_id) != StepState::Waiting {
                continue;
            }
            let doc = self
                .channel_queues
                .get_mut(channel)
                .and_then(VecDeque::pop_front)
                .expect("queue checked non-empty");
            let var = {
                let wf = self.type_for(self.db.get_instance(inst_id)?)?;
                match &wf.step(&step_id)?.kind {
                    StepKind::Receive { var, .. } => var.clone(),
                    other => {
                        return Err(WfError::Channel {
                            channel: channel.to_string(),
                            reason: format!("waiter step `{step_id}` is a {}", other.kind_name()),
                        })
                    }
                }
            };
            let mut inst = self.db.take_instance(inst_id)?;
            inst.vars.insert(var, Variable::Document(doc));
            self.stats.receives += 1;
            self.record(inst_id, HistoryKind::Delivered(step_id.clone()));
            self.finish_step_and_resume(inst, &step_id)?;
        }
    }

    fn complete_waiting_step(&mut self, inst_id: InstanceId, step_id: &StepId) -> Result<()> {
        let Ok(inst) = self.db.get_instance(inst_id) else { return Ok(()) };
        if inst.step_state(step_id) != StepState::Waiting {
            return Ok(());
        }
        let inst = self.db.take_instance(inst_id)?;
        self.finish_step_and_resume(inst, step_id)
    }

    fn finish_parent(
        &mut self,
        parent_id: InstanceId,
        parent_step: &StepId,
        child_vars: BTreeMap<String, Variable>,
        failure: Option<String>,
    ) -> Result<()> {
        let mut parent = self.db.take_instance(parent_id)?;
        if let Some(reason) = failure {
            let reason = format!("subworkflow at `{parent_step}` failed: {reason}");
            parent.status = InstanceStatus::Failed(reason.clone());
            let grandparent = parent.parent.clone();
            self.db.put_instance(parent);
            self.record(parent_id, HistoryKind::InstanceFailed(reason.clone()));
            if let Some((gp_id, gp_step)) = grandparent {
                self.finish_parent(gp_id, &gp_step, BTreeMap::new(), Some(reason))?;
            }
            return Ok(());
        }
        parent.vars.extend(child_vars);
        self.stats.steps_executed += 1;
        self.finish_step_and_resume(parent, parent_step)
    }

    /// Marks a (previously waiting) step completed on a taken-out
    /// instance, resolves its outgoing edges, stores it back and resumes.
    fn finish_step_and_resume(
        &mut self,
        mut inst: WorkflowInstance,
        step_id: &StepId,
    ) -> Result<()> {
        let id = inst.id;
        let wf = match self.type_for(&inst) {
            Ok(wf) => wf,
            Err(e) => {
                self.db.put_instance(inst);
                return Err(e);
            }
        };
        if let Err(reason) = mark_completed(&mut inst, &wf, step_id) {
            inst.status = InstanceStatus::Failed(reason.clone());
            self.db.put_instance(inst);
            self.record(id, HistoryKind::InstanceFailed(reason));
            return Ok(());
        }
        self.record(id, HistoryKind::StepCompleted(step_id.clone()));
        self.db.put_instance(inst);
        self.runnable.push_back(id);
        Ok(())
    }

    /// Resolves a remote subworkflow (called by federation with the
    /// results from the remote engine).
    pub fn resolve_remote(
        &mut self,
        parent_instance: InstanceId,
        step: &StepId,
        vars: BTreeMap<String, Variable>,
        failure: Option<String>,
    ) -> Result<()> {
        self.finish_parent(parent_instance, step, vars, failure)?;
        self.drain_runnable()
    }
}

/// Marks a step completed and resolves its outgoing edges (guard
/// evaluation); returns a failure reason when a guard cannot be evaluated.
fn mark_completed(
    inst: &mut WorkflowInstance,
    wf: &WorkflowType,
    step_id: &StepId,
) -> std::result::Result<(), String> {
    inst.step_states.insert(step_id.clone(), StepState::Completed);
    for i in wf.outgoing(step_id) {
        let edge = &wf.edges()[i];
        let taken = match &edge.guard {
            None => true,
            Some(cond) => {
                let var = inst
                    .vars
                    .get(&cond.var)
                    .ok_or_else(|| format!("guard variable `{}` is not set", cond.var))?;
                let doc = var.guard_document();
                cond.eval(&doc, &inst.source, &inst.target).map_err(|e| e.to_string())?
            }
        };
        inst.edge_states[i] = if taken { EdgeState::Taken } else { EdgeState::Dead };
    }
    Ok(())
}
