//! Persistent worker pool with chunked work-stealing.
//!
//! The sharded settle used to fork a fresh `std::thread::scope` every
//! round and join at a barrier — BENCH_sharding showed the spawn/join
//! cost eating the parallel win. The [`WorkerPool`] here is spawned once
//! and parked on a condvar between rounds; a round publishes one
//! type-erased job (`Fn(index)`) plus a shared atomic cursor, and every
//! thread — the dispatcher included — claims chunks of indices with a
//! `fetch_add` until the cursor passes the end. That self-scheduling
//! claim IS the work-stealing: a fast thread simply claims more chunks,
//! no per-thread deques or balance pass needed.
//!
//! Determinism contract: the pool only decides *which thread* runs index
//! `i`; each index is claimed exactly once, the job must write results
//! into per-index slots, and the caller merges those slots in index
//! order. Nothing observable depends on thread identity, chunk size, or
//! claim interleaving — the sharding fingerprint tests pin this across
//! pool sizes and steal chunks.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Pool utilization counters, read via `Engine::pool_stats`.
///
/// Deliberately `PartialEq` only and NEVER part of a determinism
/// fingerprint: `steals` and `idle_wakeups` depend on scheduling. The
/// deterministic members (`threads_spawned`, `rounds`, `tasks`) are what
/// the regression tests assert — in particular `threads_spawned` must
/// not move between pumps after warm-up.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Worker threads currently alive (excludes the dispatching thread).
    pub workers: usize,
    /// Cumulative threads ever spawned — stable after warm-up.
    pub threads_spawned: u64,
    /// Parallel dispatch rounds (job published to the pool).
    pub rounds: u64,
    /// Rounds run inline on the dispatcher (no workers, or ≤ 1 task).
    pub inline_rounds: u64,
    /// Total chunk claims across all threads.
    pub chunks: u64,
    /// Chunk claims by pool workers (the dispatcher's own claims are
    /// `chunks - steals`). Scheduling-dependent — measurement only.
    pub steals: u64,
    /// Individual task executions (Σ round lengths).
    pub tasks: u64,
    /// Times a worker woke for a round and found nothing left to claim.
    pub idle_wakeups: u64,
}

/// A round's job: a lifetime-erased `&(dyn Fn(usize) + Sync)` pointing
/// into the dispatcher's stack. Valid only while the round is open — the
/// dispatcher blocks in [`WorkerPool::run`] until every worker has left
/// the round, so workers never dereference it after `run` returns.
#[derive(Clone, Copy)]
struct RawJob(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared `&` calls from many threads are
// its contract), and the dispatcher keeps it alive for the whole round.
unsafe impl Send for RawJob {}
unsafe impl Sync for RawJob {}

#[derive(Clone, Copy)]
struct Round {
    job: RawJob,
    len: usize,
    chunk: usize,
}

#[derive(Default)]
struct State {
    /// Bumped once per published round; workers run each epoch once.
    epoch: u64,
    round: Option<Round>,
    /// Workers still inside the current round.
    active: usize,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    state: Mutex<State>,
    /// Signals workers: new round published, or shutdown.
    work: Condvar,
    /// Signals the dispatcher: `active` reached zero.
    done: Condvar,
    /// Next unclaimed index of the current round.
    cursor: AtomicUsize,
    /// A task panicked somewhere in the current round.
    panicked: AtomicBool,
    steals: AtomicU64,
    worker_chunks: AtomicU64,
    idle_wakeups: AtomicU64,
}

/// Claims chunks off the shared cursor and runs the job on each index.
/// Returns the number of chunks this thread claimed. Panics are caught
/// per task and latched into `shared.panicked` so a poisoned task never
/// tears down a pool thread or skips the round's barrier.
fn claim_and_run(shared: &Shared, round: &Round) -> u64 {
    let job = unsafe { &*round.job.0 };
    let mut claimed = 0u64;
    loop {
        let start = shared.cursor.fetch_add(round.chunk, Ordering::Relaxed);
        if start >= round.len {
            break;
        }
        claimed += 1;
        let end = (start + round.chunk).min(round.len);
        for index in start..end {
            if catch_unwind(AssertUnwindSafe(|| job(index))).is_err() {
                shared.panicked.store(true, Ordering::SeqCst);
            }
        }
    }
    claimed
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen_epoch = 0u64;
    loop {
        let round = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(round) = state.round {
                        seen_epoch = state.epoch;
                        break round;
                    }
                }
                state = shared.work.wait(state).expect("pool lock");
            }
        };
        let claimed = claim_and_run(&shared, &round);
        if claimed == 0 {
            shared.idle_wakeups.fetch_add(1, Ordering::Relaxed);
        }
        shared.steals.fetch_add(claimed, Ordering::Relaxed);
        shared.worker_chunks.fetch_add(claimed, Ordering::Relaxed);
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// A persistent, grow-only pool of parked worker threads.
///
/// `Default` is an empty pool: [`WorkerPool::run`] falls back to running
/// inline, so an unconfigured engine behaves exactly like the sequential
/// one. [`WorkerPool::ensure_workers`] spawns threads eagerly and never
/// shrinks; after the first settle at a given shard count, no dispatch
/// ever touches `std::thread::spawn` again.
#[derive(Default)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads_spawned: u64,
    rounds: AtomicU64,
    inline_rounds: AtomicU64,
    dispatcher_chunks: AtomicU64,
    tasks: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish()
    }
}

impl WorkerPool {
    /// Grows the pool to at least `workers` threads (never shrinks —
    /// a shard-count change mid-run must not churn threads).
    pub fn ensure_workers(&mut self, workers: usize) {
        while self.handles.len() < workers {
            let shared = Arc::clone(&self.shared);
            self.handles.push(
                std::thread::Builder::new()
                    .name(format!("b2b-settle-{}", self.handles.len()))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker"),
            );
            self.threads_spawned += 1;
        }
    }

    /// Worker threads currently alive.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` once for every index in `0..len`, fanning indices out
    /// across the pool in chunks of `chunk`; the dispatching thread
    /// participates. Blocks until every index has run. With no workers
    /// (or `len <= 1`) the job runs inline in index order — the
    /// sequential baseline the fingerprint tests compare against.
    ///
    /// Each index is claimed by exactly one thread, so a job writing to
    /// disjoint per-index slots needs no further synchronization.
    pub fn run(&self, len: usize, chunk: usize, job: &(dyn Fn(usize) + Sync)) {
        self.tasks.fetch_add(len as u64, Ordering::Relaxed);
        if self.handles.is_empty() || len <= 1 {
            self.inline_rounds.fetch_add(1, Ordering::Relaxed);
            for index in 0..len {
                job(index);
            }
            return;
        }
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let chunk = chunk.max(1);
        self.shared.cursor.store(0, Ordering::SeqCst);
        // SAFETY: `run` does not return until the round is fully drained
        // (the `active == 0` wait below), so erasing the job's lifetime
        // to publish it through the shared state never outlives `job`.
        let raw = RawJob(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        });
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.round = Some(Round { job: raw, len, chunk });
            state.epoch += 1;
            state.active = self.handles.len();
        }
        self.shared.work.notify_all();
        let round = Round { job: raw, len, chunk };
        let claimed = claim_and_run(&self.shared, &round);
        self.dispatcher_chunks.fetch_add(claimed, Ordering::Relaxed);
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.active > 0 {
            state = self.shared.done.wait(state).expect("pool lock");
        }
        state.round = None;
        drop(state);
        if self.shared.panicked.swap(false, Ordering::SeqCst) {
            panic!("shard worker panicked");
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let steals = self.shared.steals.load(Ordering::Relaxed);
        let worker_chunks = self.shared.worker_chunks.load(Ordering::Relaxed);
        PoolStats {
            workers: self.handles.len(),
            threads_spawned: self.threads_spawned,
            rounds: self.rounds.load(Ordering::Relaxed),
            inline_rounds: self.inline_rounds.load(Ordering::Relaxed),
            chunks: self.dispatcher_chunks.load(Ordering::Relaxed) + worker_chunks,
            steals,
            tasks: self.tasks.load(Ordering::Relaxed),
            idle_wakeups: self.shared.idle_wakeups.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_pool_runs_inline_in_order() {
        let pool = WorkerPool::default();
        let order = Mutex::new(Vec::new());
        pool.run(5, 2, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 0);
        assert_eq!(stats.inline_rounds, 1);
        assert_eq!(stats.tasks, 5);
    }

    #[test]
    fn every_index_runs_exactly_once_across_threads() {
        let mut pool = WorkerPool::default();
        pool.ensure_workers(3);
        let counts: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        for chunk in [1, 8] {
            pool.run(counts.len(), chunk, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 2, "index {i} ran a wrong number of times");
        }
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.threads_spawned, 3);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.tasks, 2 * 97);
    }

    #[test]
    fn ensure_workers_is_grow_only_and_idempotent() {
        let mut pool = WorkerPool::default();
        pool.ensure_workers(2);
        pool.ensure_workers(1);
        pool.ensure_workers(2);
        assert_eq!(pool.stats().threads_spawned, 2);
        pool.ensure_workers(4);
        assert_eq!(pool.stats().threads_spawned, 4);
    }

    #[test]
    fn task_panic_surfaces_after_the_round_drains() {
        let mut pool = WorkerPool::default();
        pool.ensure_workers(2);
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 1, &|i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the dispatcher");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "other tasks still ran");
        // The pool survives: the next round is clean.
        pool.run(4, 1, &|_| {});
    }
}
