//! Behavioural tests of the engine's execution semantics.

use super::*;
use crate::model::{ChannelId, StepDef, WorkflowBuilder};
use b2b_document::normalized::sample_po;
use b2b_document::{FormatId, Value};
use b2b_rules::{BusinessRule, RuleFunction};
use std::collections::BTreeMap;

fn engine() -> Engine {
    Engine::new(EngineId::new("test"))
}

fn doc_vars(amount: i64) -> BTreeMap<String, Variable> {
    let mut vars = BTreeMap::new();
    vars.insert("po".to_string(), Variable::Document(sample_po("4711", amount)));
    vars
}

#[test]
fn linear_workflow_completes() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("linear")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .step(StepDef::noop("c"))
            .edge("a", "b")
            .edge("b", "c")
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("linear"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    assert_eq!(e.stats().steps_executed, 3);
}

#[test]
fn conditional_branch_takes_one_path_and_skips_the_other() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("branch")
            .step(StepDef::noop("check"))
            .step(StepDef::noop("approve"))
            .step(StepDef::noop("store"))
            .guarded_edge("check", "approve", "po", "document.amount > 10000")
            .guarded_edge("check", "store", "po", "not (document.amount > 10000)")
            .build()
            .unwrap(),
    );
    // High amount: approve runs, store skipped.
    let id = e.create_instance(&WorkflowTypeId::new("branch"), doc_vars(20_000), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    let inst = e.db().get_instance(id).unwrap();
    assert_eq!(inst.step_state(&StepId::new("approve")), StepState::Completed);
    assert_eq!(inst.step_state(&StepId::new("store")), StepState::Skipped);
    // Low amount: the other way round.
    let id = e.create_instance(&WorkflowTypeId::new("branch"), doc_vars(5_000), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    let inst = e.db().get_instance(id).unwrap();
    assert_eq!(inst.step_state(&StepId::new("approve")), StepState::Skipped);
    assert_eq!(inst.step_state(&StepId::new("store")), StepState::Completed);
}

#[test]
fn parallel_split_and_join() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("par")
            .step(StepDef::noop("split"))
            .step(StepDef::noop("left"))
            .step(StepDef::noop("right"))
            .step(StepDef::noop("join"))
            .edge("split", "left")
            .edge("split", "right")
            .edge("left", "join")
            .edge("right", "join")
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("par"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    assert_eq!(e.stats().steps_executed, 4);
}

#[test]
fn join_after_conditional_waits_only_for_live_paths() {
    // Dead-path elimination: join fires although one branch was skipped.
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("dpe")
            .step(StepDef::noop("check"))
            .step(StepDef::noop("approve"))
            .step(StepDef::noop("join"))
            .guarded_edge("check", "approve", "po", "document.amount > 10000")
            .guarded_edge("check", "join", "po", "not (document.amount > 10000)")
            .edge("approve", "join")
            .build()
            .unwrap(),
    );
    for amount in [5_000, 20_000] {
        let id =
            e.create_instance(&WorkflowTypeId::new("dpe"), doc_vars(amount), "s", "t").unwrap();
        assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed, "amount {amount}");
    }
}

#[test]
fn receive_blocks_until_delivery() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("recv")
            .step(StepDef::receive("wait", "in", "po"))
            .step(StepDef::noop("done"))
            .edge("wait", "done")
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("recv"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Running);
    assert_eq!(e.blocked_instances(), vec![id]);
    e.deliver(&ChannelId::new("in"), sample_po("9", 10)).unwrap();
    assert_eq!(e.status(id).unwrap(), InstanceStatus::Completed);
    let po = e.variable(id, "po").unwrap();
    assert!(matches!(po, Variable::Document(_)));
}

#[test]
fn early_message_is_queued_for_a_later_receive() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("recv").step(StepDef::receive("wait", "in", "po")).build().unwrap(),
    );
    e.deliver(&ChannelId::new("in"), sample_po("9", 10)).unwrap();
    let id = e.create_instance(&WorkflowTypeId::new("recv"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed, "queued message consumed");
}

#[test]
fn send_lands_in_the_outbox() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("send").step(StepDef::send("emit", "out", "po")).build().unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("send"), doc_vars(10), "s", "t").unwrap();
    e.run(id).unwrap();
    let out = e.drain_outbox();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].0, id);
    assert_eq!(out[0].1, ChannelId::new("out"));
    assert!(e.drain_outbox().is_empty());
}

#[test]
fn timer_fires_on_time_advance() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("timer")
            .step(StepDef::timer("wait", 100))
            .step(StepDef::noop("done"))
            .edge("wait", "done")
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("timer"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Running);
    e.advance_time(SimTime::from_millis(99)).unwrap();
    assert_eq!(e.status(id).unwrap(), InstanceStatus::Running);
    e.advance_time(SimTime::from_millis(100)).unwrap();
    assert_eq!(e.status(id).unwrap(), InstanceStatus::Completed);
}

#[test]
fn rule_check_branches_on_external_rules() {
    let mut e = engine();
    let mut f = RuleFunction::new("check-need-for-approval");
    f.add_rule(BusinessRule::parse("r1", "source == \"TP1\"", "document.amount >= 55000").unwrap());
    e.rules_mut().register(f);
    e.deploy(
        WorkflowBuilder::new("rules")
            .step(StepDef::rule_check("check", "check-need-for-approval", "po", "needs"))
            .step(StepDef::activity("approve", "approve"))
            .step(StepDef::noop("store"))
            .guarded_edge("check", "approve", "needs", "document.value == true")
            .guarded_edge("check", "store", "needs", "document.value == false")
            .edge("approve", "store")
            .build()
            .unwrap(),
    );
    e.register_activity(
        "approve",
        Arc::new(|ctx: &mut ActivityContext<'_>| {
            ctx.set_value("approved", Value::Bool(true));
            Ok(())
        }),
    );
    let id =
        e.create_instance(&WorkflowTypeId::new("rules"), doc_vars(60_000), "TP1", "SAP").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    assert_eq!(e.variable(id, "approved").unwrap(), Variable::Value(Value::Bool(true)));
    assert_eq!(e.stats().rule_invocations, 1);
}

#[test]
fn no_rule_applies_fails_the_instance() {
    let mut e = engine();
    e.rules_mut().register(RuleFunction::new("check-need-for-approval"));
    e.deploy(
        WorkflowBuilder::new("rules")
            .step(StepDef::rule_check("check", "check-need-for-approval", "po", "needs"))
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("rules"), doc_vars(1), "TP9", "SAP").unwrap();
    match e.run(id).unwrap() {
        InstanceStatus::Failed(reason) => assert!(reason.contains("no rule"), "{reason}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn transform_step_uses_the_registry() {
    let mut e = engine();
    e.set_transforms(b2b_transform::TransformRegistry::with_builtins());
    e.deploy(
        WorkflowBuilder::new("xf")
            .step(StepDef::transform("to-sap", FormatId::SAP_IDOC, "po", "sap_po"))
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("xf"), doc_vars(10), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    match e.variable(id, "sap_po").unwrap() {
        Variable::Document(d) => assert_eq!(d.format(), &FormatId::SAP_IDOC),
        other => panic!("{other:?}"),
    }
}

#[test]
fn subworkflow_completes_into_parent() {
    let mut e = engine();
    e.deploy(WorkflowBuilder::new("sub").step(StepDef::activity("work", "mark")).build().unwrap());
    e.deploy(
        WorkflowBuilder::new("parent")
            .step(StepDef::noop("before"))
            .step(StepDef::subworkflow("call", &WorkflowTypeId::new("sub")))
            .step(StepDef::noop("after"))
            .edge("before", "call")
            .edge("call", "after")
            .build()
            .unwrap(),
    );
    e.register_activity(
        "mark",
        Arc::new(|ctx: &mut ActivityContext<'_>| {
            ctx.set_value("marked", Value::Bool(true));
            Ok(())
        }),
    );
    let id = e.create_instance(&WorkflowTypeId::new("parent"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Completed);
    assert_eq!(e.variable(id, "marked").unwrap(), Variable::Value(Value::Bool(true)));
}

/// Section 3.1's argument, executable: a subworkflow containing
/// `receive PO -> send POA` cannot give the PO to the superworkflow
/// between the two steps — control returns only at completion. The
/// superworkflow's transform therefore runs AFTER the POA was already
/// sent, which is exactly the defect the paper describes.
#[test]
fn subworkflow_cannot_return_control_midway() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("exchange-sub")
            .step(StepDef::receive("receive-po", "from-partner", "po"))
            .step(StepDef::send("send-poa", "to-partner", "po"))
            .edge("receive-po", "send-poa")
            .build()
            .unwrap(),
    );
    e.deploy(
        WorkflowBuilder::new("super")
            .step(StepDef::subworkflow("exchange", &WorkflowTypeId::new("exchange-sub")))
            .step(StepDef::activity("transform-po", "observe"))
            .edge("exchange", "transform-po")
            .build()
            .unwrap(),
    );
    // The observe activity records whether the POA had already been sent
    // when the superworkflow regained control.
    e.register_activity(
        "observe",
        Arc::new(|ctx: &mut ActivityContext<'_>| {
            ctx.set_value("got-control", Value::Bool(true));
            Ok(())
        }),
    );
    let id = e.create_instance(&WorkflowTypeId::new("super"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Running, "blocked inside the subworkflow");
    // Super has NOT regained control while the subworkflow waits.
    assert!(e.variable(id, "got-control").is_err());
    e.deliver(&ChannelId::new("from-partner"), sample_po("1", 5)).unwrap();
    // Now the subworkflow ran to completion: the send already happened...
    let sent = e.drain_outbox();
    assert_eq!(sent.len(), 1, "POA left before the superworkflow saw the PO");
    // ...and only then did the superworkflow regain control.
    assert_eq!(e.status(id).unwrap(), InstanceStatus::Completed);
    assert_eq!(e.variable(id, "got-control").unwrap(), Variable::Value(Value::Bool(true)));
}

#[test]
fn failing_activity_fails_instance_and_parent() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("sub").step(StepDef::activity("boom", "explode")).build().unwrap(),
    );
    e.deploy(
        WorkflowBuilder::new("parent")
            .step(StepDef::subworkflow("call", &WorkflowTypeId::new("sub")))
            .build()
            .unwrap(),
    );
    e.register_activity(
        "explode",
        Arc::new(|_: &mut ActivityContext<'_>| Err("kaboom".to_string())),
    );
    let id = e.create_instance(&WorkflowTypeId::new("parent"), BTreeMap::new(), "s", "t").unwrap();
    match e.run(id).unwrap() {
        InstanceStatus::Failed(reason) => assert!(reason.contains("kaboom"), "{reason}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_activity_fails_cleanly() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("w").step(StepDef::activity("a", "not-registered")).build().unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("w"), BTreeMap::new(), "s", "t").unwrap();
    match e.run(id).unwrap() {
        InstanceStatus::Failed(reason) => assert!(reason.contains("not-registered")),
        other => panic!("{other:?}"),
    }
}

#[test]
fn create_instance_requires_deployed_type() {
    let mut e = engine();
    assert!(e.create_instance(&WorkflowTypeId::new("ghost"), BTreeMap::new(), "s", "t").is_err());
}

#[test]
fn history_records_the_execution() {
    let mut e = engine();
    e.deploy(WorkflowBuilder::new("w").step(StepDef::noop("a")).build().unwrap());
    let id = e.create_instance(&WorkflowTypeId::new("w"), BTreeMap::new(), "s", "t").unwrap();
    e.run(id).unwrap();
    let kinds: Vec<_> = e.history().iter().map(|h| &h.kind).collect();
    assert!(kinds.contains(&&HistoryKind::InstanceCreated));
    assert!(kinds.contains(&&HistoryKind::StepCompleted(StepId::new("a"))));
    assert!(kinds.contains(&&HistoryKind::InstanceCompleted));
}

#[test]
fn two_instances_on_one_channel_are_served_fifo() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("recv").step(StepDef::receive("wait", "in", "po")).build().unwrap(),
    );
    let first = e.create_instance(&WorkflowTypeId::new("recv"), BTreeMap::new(), "s", "t").unwrap();
    let second =
        e.create_instance(&WorkflowTypeId::new("recv"), BTreeMap::new(), "s", "t").unwrap();
    e.run(first).unwrap();
    e.run(second).unwrap();
    e.deliver(&ChannelId::new("in"), sample_po("A", 1)).unwrap();
    assert_eq!(e.status(first).unwrap(), InstanceStatus::Completed, "first waiter first");
    assert_eq!(e.status(second).unwrap(), InstanceStatus::Running);
    e.deliver(&ChannelId::new("in"), sample_po("B", 1)).unwrap();
    assert_eq!(e.status(second).unwrap(), InstanceStatus::Completed);
}

#[test]
fn deliver_to_targets_one_instance_among_waiters() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("recv").step(StepDef::receive("wait", "in", "po")).build().unwrap(),
    );
    let first = e.create_instance(&WorkflowTypeId::new("recv"), BTreeMap::new(), "s", "t").unwrap();
    let second =
        e.create_instance(&WorkflowTypeId::new("recv"), BTreeMap::new(), "s", "t").unwrap();
    e.run(first).unwrap();
    e.run(second).unwrap();
    // Directed delivery skips the FIFO: the SECOND instance completes.
    e.deliver_to(second, &ChannelId::new("in"), sample_po("B", 1)).unwrap();
    assert_eq!(e.status(second).unwrap(), InstanceStatus::Completed);
    assert_eq!(e.status(first).unwrap(), InstanceStatus::Running);
}

#[test]
fn deliver_to_queues_until_the_receive_executes() {
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("slow")
            .step(StepDef::timer("pause", 50))
            .step(StepDef::receive("wait", "in", "po"))
            .edge("pause", "wait")
            .build()
            .unwrap(),
    );
    let id = e.create_instance(&WorkflowTypeId::new("slow"), BTreeMap::new(), "s", "t").unwrap();
    e.run(id).unwrap();
    // The receive step is not reached yet; the directed doc must queue.
    e.deliver_to(id, &ChannelId::new("in"), sample_po("A", 1)).unwrap();
    assert_eq!(e.status(id).unwrap(), InstanceStatus::Running);
    e.advance_time(SimTime::from_millis(50)).unwrap();
    assert_eq!(e.status(id).unwrap(), InstanceStatus::Completed);
}

#[test]
fn deliver_to_rejects_missing_or_finished_instances() {
    let mut e = engine();
    e.deploy(WorkflowBuilder::new("w").step(StepDef::noop("a")).build().unwrap());
    let id = e.create_instance(&WorkflowTypeId::new("w"), BTreeMap::new(), "s", "t").unwrap();
    e.run(id).unwrap();
    assert!(e.deliver_to(id, &ChannelId::new("in"), sample_po("A", 1)).is_err());
    assert!(e
        .deliver_to(crate::model::InstanceId::new(999), &ChannelId::new("in"), sample_po("A", 1))
        .is_err());
}

#[test]
fn transform_context_swaps_for_outbound_documents() {
    // A POA leaves the seller (normalized -> OAGIS, outbound on the
    // seller's binding) and arrives at the buyer (OAGIS -> normalized,
    // inbound on the buyer's binding). OAGIS carries no party names in
    // the ack, so both transforms must take them from context — which
    // requires the outbound/inbound swap to be direction-aware.
    let po = sample_po("77", 5);
    let poa = b2b_document::normalized::build_poa(
        &po,
        "accepted",
        b2b_document::Date::new(2001, 9, 18).unwrap(),
    )
    .unwrap();

    // Seller side: source = partner (buyer), target = enterprise (seller).
    let mut seller = engine();
    seller.set_transforms(b2b_transform::TransformRegistry::with_builtins());
    seller.deploy(
        WorkflowBuilder::new("down")
            .step(StepDef::transform("down", FormatId::OAGIS, "poa", "wire"))
            .build()
            .unwrap(),
    );
    let mut vars = BTreeMap::new();
    vars.insert("poa".to_string(), Variable::Document(poa.clone()));
    let sid = seller
        .create_instance(
            &WorkflowTypeId::new("down"),
            vars,
            "ACME Manufacturing",
            "Gadget Supply Co",
        )
        .unwrap();
    assert_eq!(seller.run(sid).unwrap(), InstanceStatus::Completed);
    let wire = match seller.variable(sid, "wire").unwrap() {
        Variable::Document(d) => d,
        other => panic!("{other:?}"),
    };
    assert_eq!(wire.format(), &FormatId::OAGIS);

    // Buyer side: source = partner (seller), target = enterprise (buyer).
    let mut buyer = engine();
    buyer.set_transforms(b2b_transform::TransformRegistry::with_builtins());
    buyer.deploy(
        WorkflowBuilder::new("up")
            .step(StepDef::transform("up", FormatId::NORMALIZED, "wire", "back"))
            .build()
            .unwrap(),
    );
    let mut vars = BTreeMap::new();
    vars.insert("wire".to_string(), Variable::Document(wire));
    let bid = buyer
        .create_instance(&WorkflowTypeId::new("up"), vars, "Gadget Supply Co", "ACME Manufacturing")
        .unwrap();
    assert_eq!(buyer.run(bid).unwrap(), InstanceStatus::Completed);
    match buyer.variable(bid, "back").unwrap() {
        Variable::Document(d) => assert_eq!(d.body(), poa.body()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn engine_recovers_from_a_database_snapshot() {
    // A blocked instance survives an engine "crash": snapshot the
    // database, rebuild a fresh engine, re-install the step
    // implementations, and the delivery completes the instance.
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("recover")
            .step(StepDef::receive("wait", "in", "po"))
            .step(StepDef::activity("finish", "finish"))
            .edge("wait", "finish")
            .build()
            .unwrap(),
    );
    e.register_activity(
        "finish",
        Arc::new(|ctx: &mut ActivityContext<'_>| {
            ctx.set_value("done", Value::Bool(true));
            Ok(())
        }),
    );
    let id = e.create_instance(&WorkflowTypeId::new("recover"), BTreeMap::new(), "s", "t").unwrap();
    assert_eq!(e.run(id).unwrap(), InstanceStatus::Running);
    let snapshot = e.snapshot_database().unwrap();
    drop(e);

    let mut revived = engine();
    revived.restore_database(&snapshot).unwrap();
    // Step implementations are code, not data: they must be re-installed.
    revived.register_activity(
        "finish",
        Arc::new(|ctx: &mut ActivityContext<'_>| {
            ctx.set_value("done", Value::Bool(true));
            Ok(())
        }),
    );
    assert_eq!(revived.status(id).unwrap(), InstanceStatus::Running);
    revived.deliver(&ChannelId::new("in"), sample_po("9", 10)).unwrap();
    assert_eq!(revived.status(id).unwrap(), InstanceStatus::Completed);
    assert_eq!(revived.variable(id, "done").unwrap(), Variable::Value(Value::Bool(true)));
}

#[test]
fn restore_rejects_garbage() {
    let mut e = engine();
    assert!(e.restore_database("not json").is_err());
}

#[test]
fn drain_outbox_is_canonically_sorted() {
    // Emission order across instances depends on execution order (and,
    // under sharding, on which worker ran what) — the drained outbox must
    // not: it comes out sorted by (instance, channel), with per-instance
    // emission order preserved within a channel.
    let mut e = engine();
    e.deploy(
        WorkflowBuilder::new("multi-send")
            .step(StepDef::send("z", "zeta", "po"))
            .step(StepDef::send("a1", "alpha", "po"))
            .step(StepDef::send("a2", "alpha", "po"))
            .edge("z", "a1")
            .edge("a1", "a2")
            .build()
            .unwrap(),
    );
    let first =
        e.create_instance(&WorkflowTypeId::new("multi-send"), doc_vars(10), "s", "t").unwrap();
    let second =
        e.create_instance(&WorkflowTypeId::new("multi-send"), doc_vars(20), "s", "t").unwrap();
    // Run in reverse creation order so raw emission order is unsorted.
    e.run(second).unwrap();
    e.run(first).unwrap();
    let out = e.drain_outbox();
    let keys: Vec<(InstanceId, ChannelId)> = out.iter().map(|(i, c, _)| (*i, c.clone())).collect();
    assert_eq!(
        keys,
        vec![
            (first, ChannelId::new("alpha")),
            (first, ChannelId::new("alpha")),
            (first, ChannelId::new("zeta")),
            (second, ChannelId::new("alpha")),
            (second, ChannelId::new("alpha")),
            (second, ChannelId::new("zeta")),
        ],
    );
    // Within (instance, alpha) the two sends kept their step order: the
    // stable sort never reorders equal keys.
    let amounts: Vec<_> = out
        .iter()
        .map(|(_, _, d)| d.get("header.po_number").unwrap().as_text("po").unwrap().to_string())
        .collect();
    assert_eq!(amounts.len(), 6);
}

#[test]
fn settle_matches_run_for_any_shard_count() {
    // The same three-instance workload settled with 1, 2, and 5 workers
    // produces identical stats, history, and outbox.
    let build = || {
        let mut e = engine();
        e.deploy(
            WorkflowBuilder::new("flow")
                .step(StepDef::noop("start"))
                .step(StepDef::send("emit", "out", "po"))
                .edge("start", "emit")
                .build()
                .unwrap(),
        );
        let ids: Vec<InstanceId> = (0..3)
            .map(|i| {
                let id = e
                    .create_instance(&WorkflowTypeId::new("flow"), doc_vars(10 + i), "s", "t")
                    .unwrap();
                e.schedule(id);
                id
            })
            .collect();
        (e, ids)
    };
    let (mut base, _) = build();
    base.settle(1, &|id| id.value() as usize).unwrap();
    let base_out = base.drain_outbox();
    for shards in [2, 5] {
        let (mut e, _) = build();
        e.settle(shards, &|id| id.value() as usize).unwrap();
        assert_eq!(e.stats(), base.stats(), "{shards} shards");
        assert_eq!(e.history(), base.history(), "{shards} shards");
        let out = e.drain_outbox();
        assert_eq!(out.len(), base_out.len(), "{shards} shards");
        for (a, b) in out.iter().zip(base_out.iter()) {
            assert_eq!((a.0, &a.1), (b.0, &b.1), "{shards} shards");
        }
    }
}
