//! Error type for the WFMS.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WfError>;

/// Errors raised by the workflow engine and federation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum WfError {
    /// A workflow type failed validation at deployment.
    InvalidType { workflow: String, reason: String },
    /// A referenced workflow type is not in the engine's database.
    UnknownType { workflow: String },
    /// A referenced instance does not exist.
    UnknownInstance { instance: u64 },
    /// A step referenced an activity that is not registered.
    UnknownActivity { activity: String },
    /// A step execution failed.
    StepFailed { workflow: String, step: String, reason: String },
    /// The instance is in a state that does not permit the operation.
    BadState { instance: u64, state: String, operation: String },
    /// A channel delivery could not be routed.
    Channel { channel: String, reason: String },
    /// Federation-level failure (migration, distribution).
    Federation { reason: String },
    /// Snapshot encode/decode failure.
    Snapshot { reason: String },
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidType { workflow, reason } => {
                write!(f, "invalid workflow type `{workflow}`: {reason}")
            }
            Self::UnknownType { workflow } => write!(f, "unknown workflow type `{workflow}`"),
            Self::UnknownInstance { instance } => write!(f, "unknown instance {instance}"),
            Self::UnknownActivity { activity } => write!(f, "unknown activity `{activity}`"),
            Self::StepFailed { workflow, step, reason } => {
                write!(f, "step `{step}` of `{workflow}` failed: {reason}")
            }
            Self::BadState { instance, state, operation } => {
                write!(f, "instance {instance} is {state}; cannot {operation}")
            }
            Self::Channel { channel, reason } => write!(f, "channel `{channel}`: {reason}"),
            Self::Federation { reason } => write!(f, "federation error: {reason}"),
            Self::Snapshot { reason } => write!(f, "snapshot error: {reason}"),
        }
    }
}

impl std::error::Error for WfError {}

impl From<b2b_rules::RuleError> for WfError {
    fn from(e: b2b_rules::RuleError) -> Self {
        Self::StepFailed { workflow: String::new(), step: "<rule>".into(), reason: e.to_string() }
    }
}
