//! Engine federation: the paper's distributed workflow management.
//!
//! Implements the three distribution mechanisms of Section 2.1:
//!
//! * **Workflow instance migration** (Figure 5(a)) — an instance is
//!   serialized out of one engine's database and imported into another's.
//! * **Automatic workflow type migration** (Figure 6) — before migrating
//!   an instance, the federation checks whether the target engine has the
//!   workflow type (①), copies it and all transitively referenced
//!   subworkflow types if not (②), then migrates the instance (③).
//! * **Subworkflow distribution** (Figure 5(b)) — a `Subworkflow` step
//!   with a remote engine runs on that engine; the master engine sees only
//!   the subworkflow's interface (its variables), the remote engine must
//!   hold the subworkflow type.
//!
//! The federation records exactly what crossed engine boundaries — the
//! knowledge-exposure experiment (E3) reads these ledgers.

use crate::engine::{Engine, InstanceStatus, Variable};
use crate::error::{Result, WfError};
use crate::model::{InstanceId, StepId, WorkflowTypeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Identifies an engine (one per organization in the paper's figures).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EngineId(String);

impl EngineId {
    /// Wraps an engine name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// What crossed an engine boundary (the competitive-knowledge ledger).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedArtifact {
    /// A full workflow type definition was copied from one engine to
    /// another — the receiver can now read the sender's business rules.
    TypeCopied {
        /// Sending engine.
        from: EngineId,
        /// Receiving engine.
        to: EngineId,
        /// The copied type.
        workflow: WorkflowTypeId,
    },
    /// A serialized instance (full execution state) moved between engines.
    InstanceMoved {
        /// Sending engine.
        from: EngineId,
        /// Receiving engine.
        to: EngineId,
        /// Snapshot size in bytes (what the receiver can inspect).
        snapshot_bytes: usize,
    },
    /// Only a subworkflow *interface* (variable snapshot) crossed — the
    /// master engine never sees the remote definition.
    InterfaceShared {
        /// Master engine.
        from: EngineId,
        /// Remote engine.
        to: EngineId,
        /// Subworkflow whose interface was exercised.
        workflow: WorkflowTypeId,
    },
}

/// Aggregate migration counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FederationStats {
    /// Figure 6 step ① checks performed.
    pub type_checks: u64,
    /// Types copied between engines (step ②).
    pub types_migrated: u64,
    /// Instances moved between engines (step ③ / Figure 5(a)).
    pub instances_migrated: u64,
    /// Remote subworkflows started (Figure 5(b)).
    pub remote_subworkflows: u64,
}

struct PendingRemote {
    source_engine: EngineId,
    parent_instance: InstanceId,
    step: StepId,
    remote_engine: EngineId,
    remote_instance: InstanceId,
}

/// A set of engines plus the inter-engine transfer machinery.
#[derive(Default)]
pub struct Federation {
    engines: BTreeMap<EngineId, Engine>,
    pending_remote: VecDeque<PendingRemote>,
    ledger: Vec<SharedArtifact>,
    stats: FederationStats,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an engine.
    pub fn add_engine(&mut self, engine: Engine) {
        self.engines.insert(engine.id().clone(), engine);
    }

    /// Borrows an engine.
    pub fn engine(&self, id: &EngineId) -> Result<&Engine> {
        self.engines
            .get(id)
            .ok_or_else(|| WfError::Federation { reason: format!("no engine `{id}`") })
    }

    /// Mutably borrows an engine.
    pub fn engine_mut(&mut self, id: &EngineId) -> Result<&mut Engine> {
        self.engines
            .get_mut(id)
            .ok_or_else(|| WfError::Federation { reason: format!("no engine `{id}`") })
    }

    /// Transfer ledger (what each engine could learn about the others).
    pub fn ledger(&self) -> &[SharedArtifact] {
        &self.ledger
    }

    /// Counters.
    pub fn stats(&self) -> &FederationStats {
        &self.stats
    }

    /// Migrates an instance from one engine to another with automatic
    /// type migration (Figure 6). Returns the instance's id on the target.
    pub fn migrate_instance(
        &mut self,
        from: &EngineId,
        to: &EngineId,
        instance: InstanceId,
    ) -> Result<InstanceId> {
        if from == to {
            return Err(WfError::Federation {
                reason: "source and target engine are equal".into(),
            });
        }
        let snapshot = self.engine_mut(from)?.export_instance(instance)?;
        // Step ①: does the target have the required type?
        self.stats.type_checks += 1;
        if let Some(type_id) = Engine::required_type_of(&snapshot)? {
            if !self.engine(to)?.db().has_type(&type_id) {
                // Step ②: migrate the type closure.
                self.migrate_type_closure(from, to, &type_id)?;
            }
        }
        // Step ③: migrate the instance.
        let new_id = match self.engine_mut(to)?.import_instance(&snapshot) {
            Ok(id) => id,
            Err(e) => {
                // Roll back: the instance must not be lost.
                self.engine_mut(from)?.import_instance(&snapshot)?;
                return Err(e);
            }
        };
        self.stats.instances_migrated += 1;
        self.ledger.push(SharedArtifact::InstanceMoved {
            from: from.clone(),
            to: to.clone(),
            snapshot_bytes: snapshot.len(),
        });
        Ok(new_id)
    }

    /// Copies a type and everything it references to the target engine
    /// (consistent copies, as Section 2.1 requires).
    pub fn migrate_type_closure(
        &mut self,
        from: &EngineId,
        to: &EngineId,
        root: &WorkflowTypeId,
    ) -> Result<usize> {
        let mut to_copy = vec![root.clone()];
        let mut seen = BTreeSet::new();
        let mut copied = 0usize;
        while let Some(type_id) = to_copy.pop() {
            if !seen.insert(type_id.clone()) {
                continue;
            }
            let wf = self.engine(from)?.db().get_type(&type_id)?.clone();
            to_copy.extend(wf.referenced_types().into_iter().cloned());
            if !self.engine(to)?.db().has_type(&type_id) {
                self.engine_mut(to)?.deploy(wf);
                copied += 1;
                self.stats.types_migrated += 1;
                self.ledger.push(SharedArtifact::TypeCopied {
                    from: from.clone(),
                    to: to.clone(),
                    workflow: type_id,
                });
            }
        }
        Ok(copied)
    }

    /// Processes remote-subworkflow traffic: starts requested subworkflows
    /// on their remote engines and resolves completed ones back to their
    /// masters. Returns `true` when any progress was made; call repeatedly
    /// (interleaved with message deliveries) until it returns `false`.
    pub fn pump(&mut self) -> Result<bool> {
        let mut progressed = false;
        // Start newly requested remote subworkflows.
        let engine_ids: Vec<EngineId> = self.engines.keys().cloned().collect();
        for source in &engine_ids {
            let requests = self.engine_mut(source)?.drain_remote_requests();
            for req in requests {
                progressed = true;
                self.stats.remote_subworkflows += 1;
                self.ledger.push(SharedArtifact::InterfaceShared {
                    from: source.clone(),
                    to: req.engine.clone(),
                    workflow: req.workflow.clone(),
                });
                let start = (|| -> Result<InstanceId> {
                    let remote = self.engine_mut(&req.engine)?;
                    if !remote.db().has_type(&req.workflow) {
                        return Err(WfError::UnknownType { workflow: req.workflow.to_string() });
                    }
                    let id = remote.create_instance(
                        &req.workflow,
                        req.vars.clone(),
                        &req.source,
                        &req.target,
                    )?;
                    remote.run(id)?;
                    Ok(id)
                })();
                match start {
                    Ok(remote_instance) => self.pending_remote.push_back(PendingRemote {
                        source_engine: source.clone(),
                        parent_instance: req.parent_instance,
                        step: req.step,
                        remote_engine: req.engine,
                        remote_instance,
                    }),
                    Err(e) => {
                        self.engine_mut(source)?.resolve_remote(
                            req.parent_instance,
                            &req.step,
                            BTreeMap::new(),
                            Some(e.to_string()),
                        )?;
                    }
                }
            }
        }
        // Resolve completed remote subworkflows.
        let mut still_pending = VecDeque::new();
        while let Some(p) = self.pending_remote.pop_front() {
            let status = self.engine(&p.remote_engine)?.status(p.remote_instance)?;
            match status {
                InstanceStatus::Running => still_pending.push_back(p),
                InstanceStatus::Completed => {
                    progressed = true;
                    let vars: BTreeMap<String, Variable> = self
                        .engine(&p.remote_engine)?
                        .db()
                        .get_instance(p.remote_instance)?
                        .vars
                        .clone();
                    self.engine_mut(&p.source_engine)?.resolve_remote(
                        p.parent_instance,
                        &p.step,
                        vars,
                        None,
                    )?;
                }
                InstanceStatus::Failed(reason) => {
                    progressed = true;
                    self.engine_mut(&p.source_engine)?.resolve_remote(
                        p.parent_instance,
                        &p.step,
                        BTreeMap::new(),
                        Some(reason),
                    )?;
                }
            }
        }
        self.pending_remote = still_pending;
        Ok(progressed)
    }

    /// Pumps until quiescent (no pending remote work makes progress).
    pub fn pump_to_quiescence(&mut self) -> Result<()> {
        while self.pump()? {}
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{StepDef, WorkflowBuilder};
    use b2b_document::Value;

    fn noop_engine(name: &str) -> Engine {
        Engine::new(EngineId::new(name))
    }

    fn simple_type(name: &str) -> crate::model::WorkflowType {
        WorkflowBuilder::new(name)
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .edge("a", "b")
            .build()
            .unwrap()
    }

    #[test]
    fn migration_with_automatic_type_migration() {
        let mut fed = Federation::new();
        let mut alpha = noop_engine("alpha");
        alpha.deploy(simple_type("w"));
        fed.add_engine(alpha);
        fed.add_engine(noop_engine("beta"));
        let (a, b) = (EngineId::new("alpha"), EngineId::new("beta"));
        let id = fed
            .engine_mut(&a)
            .unwrap()
            .create_instance(&WorkflowTypeId::new("w"), BTreeMap::new(), "s", "t")
            .unwrap();
        assert!(!fed.engine(&b).unwrap().db().has_type(&WorkflowTypeId::new("w")));
        let new_id = fed.migrate_instance(&a, &b, id).unwrap();
        // Target got the type (Figure 6 ②) and the instance (③).
        assert!(fed.engine(&b).unwrap().db().has_type(&WorkflowTypeId::new("w")));
        assert_eq!(fed.stats().types_migrated, 1);
        assert_eq!(fed.stats().instances_migrated, 1);
        // Source no longer has it.
        assert!(fed.engine(&a).unwrap().status(id).is_err());
        // And it still runs to completion on the target.
        let status = fed.engine_mut(&b).unwrap().run(new_id).unwrap();
        assert_eq!(status, InstanceStatus::Completed);
        // Exposure ledger shows a full type copy — the paper's complaint.
        assert!(fed.ledger().iter().any(|a| matches!(a, SharedArtifact::TypeCopied { .. })));
    }

    #[test]
    fn migration_closure_includes_subworkflow_types() {
        let mut fed = Federation::new();
        let mut alpha = noop_engine("alpha");
        alpha.deploy(simple_type("sub"));
        let parent = WorkflowBuilder::new("parent")
            .step(StepDef::subworkflow("call", &WorkflowTypeId::new("sub")))
            .build()
            .unwrap();
        alpha.deploy(parent);
        fed.add_engine(alpha);
        fed.add_engine(noop_engine("beta"));
        let (a, b) = (EngineId::new("alpha"), EngineId::new("beta"));
        let copied = fed.migrate_type_closure(&a, &b, &WorkflowTypeId::new("parent")).unwrap();
        assert_eq!(copied, 2, "parent and sub both copied");
        assert!(fed.engine(&b).unwrap().db().has_type(&WorkflowTypeId::new("sub")));
    }

    #[test]
    fn carried_type_instances_migrate_without_type_copy() {
        let mut fed = Federation::new();
        let mut alpha = noop_engine("alpha");
        alpha.set_carry_types(true);
        alpha.deploy(simple_type("w"));
        fed.add_engine(alpha);
        fed.add_engine(noop_engine("beta"));
        let (a, b) = (EngineId::new("alpha"), EngineId::new("beta"));
        let id = fed
            .engine_mut(&a)
            .unwrap()
            .create_instance(&WorkflowTypeId::new("w"), BTreeMap::new(), "s", "t")
            .unwrap();
        let new_id = fed.migrate_instance(&a, &b, id).unwrap();
        assert_eq!(fed.stats().types_migrated, 0, "type travels inside the instance");
        assert!(!fed.engine(&b).unwrap().db().has_type(&WorkflowTypeId::new("w")));
        let status = fed.engine_mut(&b).unwrap().run(new_id).unwrap();
        assert_eq!(status, InstanceStatus::Completed);
    }

    #[test]
    fn remote_subworkflow_runs_on_the_slave_engine() {
        let mut fed = Federation::new();
        let mut alpha = noop_engine("alpha");
        let mut beta = noop_engine("beta");
        // Beta holds the subworkflow type; alpha only references it.
        let sub = WorkflowBuilder::new("remote-sub")
            .step(StepDef::activity("work", "do-work"))
            .build()
            .unwrap();
        beta.deploy(sub);
        beta.register_activity(
            "do-work",
            std::sync::Arc::new(|ctx: &mut crate::engine::ActivityContext<'_>| {
                ctx.set_value("result", Value::Int(99));
                Ok(())
            }),
        );
        let parent = WorkflowBuilder::new("master")
            .step(StepDef::remote_subworkflow(
                "delegate",
                &WorkflowTypeId::new("remote-sub"),
                &EngineId::new("beta"),
            ))
            .build()
            .unwrap();
        alpha.deploy(parent);
        fed.add_engine(alpha);
        fed.add_engine(beta);
        let a = EngineId::new("alpha");
        let id = fed
            .engine_mut(&a)
            .unwrap()
            .create_instance(&WorkflowTypeId::new("master"), BTreeMap::new(), "s", "t")
            .unwrap();
        fed.engine_mut(&a).unwrap().run(id).unwrap();
        fed.pump_to_quiescence().unwrap();
        assert_eq!(fed.engine(&a).unwrap().status(id).unwrap(), InstanceStatus::Completed);
        // The slave's results flowed back into the master's variables.
        let v = fed.engine(&a).unwrap().variable(id, "result").unwrap();
        assert_eq!(v, Variable::Value(Value::Int(99)));
        // Only the interface crossed the boundary.
        assert!(fed.ledger().iter().any(|x| matches!(
            x,
            SharedArtifact::InterfaceShared { workflow, .. } if workflow.as_str() == "remote-sub"
        )));
        assert_eq!(fed.stats().remote_subworkflows, 1);
    }

    #[test]
    fn remote_subworkflow_without_type_fails_the_master() {
        let mut fed = Federation::new();
        let mut alpha = noop_engine("alpha");
        let parent = WorkflowBuilder::new("master")
            .step(StepDef::remote_subworkflow(
                "delegate",
                &WorkflowTypeId::new("missing"),
                &EngineId::new("beta"),
            ))
            .build()
            .unwrap();
        alpha.deploy(parent);
        fed.add_engine(alpha);
        fed.add_engine(noop_engine("beta"));
        let a = EngineId::new("alpha");
        let id = fed
            .engine_mut(&a)
            .unwrap()
            .create_instance(&WorkflowTypeId::new("master"), BTreeMap::new(), "s", "t")
            .unwrap();
        fed.engine_mut(&a).unwrap().run(id).unwrap();
        fed.pump_to_quiescence().unwrap();
        match fed.engine(&a).unwrap().status(id).unwrap() {
            InstanceStatus::Failed(reason) => assert!(reason.contains("missing")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn migrating_to_the_same_engine_is_rejected() {
        let mut fed = Federation::new();
        fed.add_engine(noop_engine("alpha"));
        let a = EngineId::new("alpha");
        assert!(fed.migrate_instance(&a, &a, InstanceId::new(1)).is_err());
    }
}
