//! Audit history of workflow execution.

use crate::model::{InstanceId, StepId};
use b2b_network::SimTime;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistoryKind {
    /// Instance created.
    InstanceCreated,
    /// Instance reached completion.
    InstanceCompleted,
    /// Instance failed with the given reason.
    InstanceFailed(String),
    /// A step completed.
    StepCompleted(StepId),
    /// A step was skipped by dead-path elimination.
    StepSkipped(StepId),
    /// A step began waiting (receive or timer).
    StepWaiting(StepId),
    /// A document was delivered to a waiting step.
    Delivered(StepId),
    /// The instance was migrated in from another engine.
    MigratedIn(String),
    /// The instance was migrated out to another engine.
    MigratedOut(String),
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryEvent {
    /// Logical time of the event.
    pub at: SimTime,
    /// Instance concerned.
    pub instance: InstanceId,
    /// What happened.
    pub kind: HistoryKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize() {
        let e = HistoryEvent {
            at: SimTime::from_millis(5),
            instance: InstanceId::new(1),
            kind: HistoryKind::StepCompleted(StepId::new("send-po")),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: HistoryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
