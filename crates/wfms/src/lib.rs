//! A workflow management system (WFMS) built from scratch.
//!
//! Section 2.1 of the paper describes the architecture this crate
//! implements: a *workflow engine* interprets *workflow instances* whose
//! state lives in a *workflow database* together with the *workflow types*
//! (Figure 4). On top of that single-engine core, [`federation`] adds the
//! paper's distribution cases (Figures 5–7): workflow-instance migration
//! between engines, automatic workflow-type migration, and subworkflow
//! distribution to a remote engine.
//!
//! Design decisions that mirror the paper:
//!
//! * **Types live in the database.** An engine can only advance an
//!   instance when the instance's type (and every subworkflow type it
//!   references) is present in the engine's database — migration checks
//!   this exactly as Figure 6 does.
//! * **Dead-path elimination.** Conditional branches mark untaken edges
//!   dead; a join becomes ready once every incoming edge is resolved and at
//!   least one carried a token. This matches classic production engines
//!   (MQSeries Workflow) that the paper's process graphs assume.
//! * **Subworkflows return control only on completion** (Section 3.1).
//!   The engine deliberately has no way for a subworkflow to yield in the
//!   middle — tests demonstrate exactly the limitation the paper uses to
//!   argue that message exchanges cannot be packaged as subworkflows.
//! * **Generic steps, external behaviour.** Activities, business rules and
//!   transformations are looked up by name at runtime from registries the
//!   host installs, so workflow types stay free of partner specifics.

pub mod db;
pub mod engine;
pub mod error;
pub mod federation;
pub mod history;
pub mod model;

pub use db::WorkflowDatabase;
pub use engine::{
    Activity, ActivityContext, Engine, EngineStats, InstanceStatus, PoolStats, SettleMetrics,
    Variable, WorkerPool,
};
pub use error::{Result, WfError};
pub use federation::{EngineId, Federation, FederationStats, SharedArtifact};
pub use history::{HistoryEvent, HistoryKind};
pub use model::{
    ChannelId, Condition, Edge, InstanceId, StepDef, StepId, StepKind, WorkflowBuilder,
    WorkflowType, WorkflowTypeId,
};
