//! Guard conditions on control-flow edges.

use crate::error::{Result, WfError};
use b2b_document::Document;
use b2b_rules::{Expr, RuleContext};
use serde::{Deserialize, Serialize};

/// A guard: an expression evaluated against one instance variable
/// (`PO.amount > 10000` in Figure 1 becomes `var: "po", expr:
/// document.amount > 10000`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Instance variable holding the document the expression reads.
    pub var: String,
    /// The boolean expression (`document` refers to the variable).
    pub expr: Expr,
}

impl Condition {
    /// Parses a condition from expression source.
    pub fn parse(var: &str, expr: &str) -> Result<Self> {
        let expr = Expr::parse(expr).map_err(|e| WfError::InvalidType {
            workflow: String::new(),
            reason: format!("bad condition on `{var}`: {e}"),
        })?;
        Ok(Self { var: var.to_string(), expr })
    }

    /// Evaluates the guard.
    pub fn eval(&self, document: &Document, source: &str, target: &str) -> Result<bool> {
        self.expr.eval_bool(&RuleContext::new(source, target, document)).map_err(WfError::from)
    }

    /// AST size (model metrics: inlined conditions bloat workflow types).
    pub fn node_count(&self) -> usize {
        self.expr.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use b2b_document::normalized::sample_po;

    #[test]
    fn guard_evaluates_against_a_document() {
        let c = Condition::parse("po", "document.amount > 10000").unwrap();
        assert!(c.eval(&sample_po("1", 20_000), "s", "t").unwrap());
        assert!(!c.eval(&sample_po("1", 5_000), "s", "t").unwrap());
        assert!(c.node_count() >= 3);
    }

    #[test]
    fn parse_rejects_bad_expressions() {
        assert!(Condition::parse("po", "document.amount >").is_err());
    }

    #[test]
    fn non_boolean_guard_is_a_runtime_error() {
        let c = Condition::parse("po", "1 + 1").unwrap();
        assert!(c.eval(&sample_po("1", 1), "s", "t").is_err());
    }
}
