//! Identifier newtypes for the WFMS.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a workflow type (definition).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkflowTypeId(String);

impl WorkflowTypeId {
    /// Wraps a type name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for WorkflowTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifies a step within a workflow type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StepId(String);

impl StepId {
    /// Wraps a step name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifies a message channel (mailbox) on an engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(String);

impl ChannelId {
    /// Wraps a channel name.
    pub fn new(name: impl Into<String>) -> Self {
        Self(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Identifies a workflow instance within one engine's database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Wraps a raw id (allocated by the database).
    pub fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Raw value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wf-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_their_content() {
        assert_eq!(WorkflowTypeId::new("po-roundtrip").to_string(), "po-roundtrip");
        assert_eq!(StepId::new("send-po").to_string(), "send-po");
        assert_eq!(ChannelId::new("edi:in").to_string(), "edi:in");
        assert_eq!(InstanceId::new(7).to_string(), "wf-7");
        assert_eq!(InstanceId::new(7).value(), 7);
    }
}
