//! Workflow type model: steps, control flow, conditions.

mod condition;
mod ids;
mod step;
mod workflow;

pub use condition::Condition;
pub use ids::{ChannelId, InstanceId, StepId, WorkflowTypeId};
pub use step::{StepDef, StepKind};
pub use workflow::{Edge, WorkflowBuilder, WorkflowType};
