//! Step definitions.

use super::ids::{ChannelId, StepId, WorkflowTypeId};
use crate::federation::EngineId;
use b2b_document::FormatId;
use serde::{Deserialize, Serialize};

/// What a step does when it executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepKind {
    /// Structural marker (start/end/audit points); completes immediately.
    NoOp,
    /// Invokes a named activity registered with the engine (ERP extract /
    /// store, approval, …). The workflow type only names the activity; its
    /// implementation lives outside, as the paper requires.
    Activity {
        /// Registered activity name.
        activity: String,
    },
    /// Runs another workflow type as a subworkflow; the step completes
    /// only when the subworkflow completes (Section 3.1 semantics).
    Subworkflow {
        /// The subworkflow's type.
        workflow: WorkflowTypeId,
        /// `Some(engine)` distributes the subworkflow to a remote engine
        /// (Figure 5(b) / 7(b)); `None` runs it locally.
        remote: Option<EngineId>,
    },
    /// Emits the document in `var` on a channel (the engine's outbox; the
    /// host routes it to the network, a binding, or a back end).
    Send {
        /// Channel to emit on.
        channel: ChannelId,
        /// Variable holding the document to send.
        var: String,
    },
    /// Waits for a document on a channel and stores it in `var`.
    Receive {
        /// Channel to wait on.
        channel: ChannelId,
        /// Variable the received document is stored in.
        var: String,
    },
    /// The paper's generic business-rule step: invokes a named rule
    /// function with `(source, target, document)` and stores the result.
    RuleCheck {
        /// Rule function name (e.g. `check-need-for-approval`).
        function: String,
        /// Variable holding the document passed to the rules.
        doc_var: String,
        /// Variable the result is stored into.
        out_var: String,
    },
    /// Invokes the transformation registry to convert `var` into
    /// `target_format`, storing the result in `out_var`. (Only the naïve
    /// baselines put this inside workflows; the advanced architecture
    /// keeps it in bindings — the engine supports both so the comparison
    /// is fair.)
    Transform {
        /// Desired format.
        target_format: FormatId,
        /// Input document variable.
        var: String,
        /// Output document variable.
        out_var: String,
    },
    /// Waits until `delay_ms` of logical time has passed (time-outs in
    /// public processes).
    Timer {
        /// Delay in milliseconds.
        delay_ms: u64,
    },
}

impl StepKind {
    /// Short kind name for metrics and display.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::NoOp => "noop",
            Self::Activity { .. } => "activity",
            Self::Subworkflow { .. } => "subworkflow",
            Self::Send { .. } => "send",
            Self::Receive { .. } => "receive",
            Self::RuleCheck { .. } => "rule-check",
            Self::Transform { .. } => "transform",
            Self::Timer { .. } => "timer",
        }
    }
}

/// A step definition: identity plus behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepDef {
    /// Step id, unique within the workflow type.
    pub id: StepId,
    /// What the step does.
    pub kind: StepKind,
}

impl StepDef {
    /// Builds a step.
    pub fn new(id: &str, kind: StepKind) -> Self {
        Self { id: StepId::new(id), kind }
    }

    /// A no-op marker step.
    pub fn noop(id: &str) -> Self {
        Self::new(id, StepKind::NoOp)
    }

    /// An activity step.
    pub fn activity(id: &str, activity: &str) -> Self {
        Self::new(id, StepKind::Activity { activity: activity.to_string() })
    }

    /// A local subworkflow step.
    pub fn subworkflow(id: &str, workflow: &WorkflowTypeId) -> Self {
        Self::new(id, StepKind::Subworkflow { workflow: workflow.clone(), remote: None })
    }

    /// A distributed subworkflow step.
    pub fn remote_subworkflow(id: &str, workflow: &WorkflowTypeId, engine: &EngineId) -> Self {
        Self::new(
            id,
            StepKind::Subworkflow { workflow: workflow.clone(), remote: Some(engine.clone()) },
        )
    }

    /// A send step.
    pub fn send(id: &str, channel: &str, var: &str) -> Self {
        Self::new(id, StepKind::Send { channel: ChannelId::new(channel), var: var.to_string() })
    }

    /// A receive step.
    pub fn receive(id: &str, channel: &str, var: &str) -> Self {
        Self::new(id, StepKind::Receive { channel: ChannelId::new(channel), var: var.to_string() })
    }

    /// A rule-check step.
    pub fn rule_check(id: &str, function: &str, doc_var: &str, out_var: &str) -> Self {
        Self::new(
            id,
            StepKind::RuleCheck {
                function: function.to_string(),
                doc_var: doc_var.to_string(),
                out_var: out_var.to_string(),
            },
        )
    }

    /// A transform step.
    pub fn transform(id: &str, target_format: FormatId, var: &str, out_var: &str) -> Self {
        Self::new(
            id,
            StepKind::Transform {
                target_format,
                var: var.to_string(),
                out_var: out_var.to_string(),
            },
        )
    }

    /// A timer step.
    pub fn timer(id: &str, delay_ms: u64) -> Self {
        Self::new(id, StepKind::Timer { delay_ms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_kind() {
        assert_eq!(StepDef::noop("a").kind.kind_name(), "noop");
        assert_eq!(StepDef::activity("a", "store-po").kind.kind_name(), "activity");
        assert_eq!(StepDef::send("a", "c", "v").kind.kind_name(), "send");
        assert_eq!(StepDef::receive("a", "c", "v").kind.kind_name(), "receive");
        assert_eq!(StepDef::rule_check("a", "f", "d", "o").kind.kind_name(), "rule-check");
        assert_eq!(StepDef::timer("a", 5).kind.kind_name(), "timer");
        let wf = WorkflowTypeId::new("sub");
        assert_eq!(StepDef::subworkflow("a", &wf).kind.kind_name(), "subworkflow");
        assert_eq!(
            StepDef::transform("a", FormatId::NORMALIZED, "v", "o").kind.kind_name(),
            "transform"
        );
    }
}
