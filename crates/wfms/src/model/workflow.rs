//! Workflow types: step graphs with guarded control flow.

use super::condition::Condition;
use super::ids::{StepId, WorkflowTypeId};
use super::step::{StepDef, StepKind};
use crate::error::{Result, WfError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A control-flow edge, optionally guarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source step.
    pub from: StepId,
    /// Target step.
    pub to: StepId,
    /// Guard; `None` is unconditional.
    pub guard: Option<Condition>,
}

/// A workflow type (definition).
///
/// Validation enforces: unique step ids, edges between existing steps, an
/// acyclic graph (loops are modelled by re-running subworkflows at the
/// host level), and at least one start step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowType {
    id: WorkflowTypeId,
    version: u32,
    steps: Vec<StepDef>,
    edges: Vec<Edge>,
}

impl WorkflowType {
    /// Builds and validates a workflow type.
    pub fn new(
        id: WorkflowTypeId,
        version: u32,
        steps: Vec<StepDef>,
        edges: Vec<Edge>,
    ) -> Result<Self> {
        let wf = Self { id, version, steps, edges };
        wf.validate()?;
        Ok(wf)
    }

    fn invalid(&self, reason: impl Into<String>) -> WfError {
        WfError::InvalidType { workflow: self.id.to_string(), reason: reason.into() }
    }

    fn validate(&self) -> Result<()> {
        if self.steps.is_empty() {
            return Err(self.invalid("a workflow needs at least one step"));
        }
        let mut ids = BTreeSet::new();
        for step in &self.steps {
            if !ids.insert(&step.id) {
                return Err(self.invalid(format!("duplicate step id `{}`", step.id)));
            }
        }
        for edge in &self.edges {
            for end in [&edge.from, &edge.to] {
                if !ids.contains(end) {
                    return Err(self.invalid(format!("edge references unknown step `{end}`")));
                }
            }
            if edge.from == edge.to {
                return Err(self.invalid(format!("self-loop on `{}`", edge.from)));
            }
        }
        // Cycle check via Kahn's algorithm.
        let mut indegree: BTreeMap<&StepId, usize> =
            self.steps.iter().map(|s| (&s.id, 0)).collect();
        for edge in &self.edges {
            *indegree.get_mut(&edge.to).expect("validated") += 1;
        }
        let mut queue: Vec<&StepId> =
            indegree.iter().filter(|(_, d)| **d == 0).map(|(id, _)| *id).collect();
        if queue.is_empty() {
            return Err(self.invalid("no start step (every step has a predecessor)"));
        }
        let mut visited = 0usize;
        while let Some(id) = queue.pop() {
            visited += 1;
            for edge in self.edges.iter().filter(|e| &e.from == id) {
                let d = indegree.get_mut(&edge.to).expect("validated");
                *d -= 1;
                if *d == 0 {
                    queue.push(&edge.to);
                }
            }
        }
        if visited != self.steps.len() {
            return Err(self.invalid("control flow contains a cycle"));
        }
        Ok(())
    }

    /// Type id.
    pub fn id(&self) -> &WorkflowTypeId {
        &self.id
    }

    /// Version number (bumped on every definition change).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// All steps.
    pub fn steps(&self) -> &[StepDef] {
        &self.steps
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// A step by id.
    pub fn step(&self, id: &StepId) -> Result<&StepDef> {
        self.steps
            .iter()
            .find(|s| &s.id == id)
            .ok_or_else(|| self.invalid(format!("no step `{id}`")))
    }

    /// Steps with no incoming edges.
    pub fn start_steps(&self) -> Vec<&StepId> {
        self.steps
            .iter()
            .map(|s| &s.id)
            .filter(|id| !self.edges.iter().any(|e| &e.to == *id))
            .collect()
    }

    /// Incoming edges of a step (by edge index).
    pub fn incoming(&self, id: &StepId) -> Vec<usize> {
        self.edges.iter().enumerate().filter(|(_, e)| &e.to == id).map(|(i, _)| i).collect()
    }

    /// Outgoing edges of a step (by edge index).
    pub fn outgoing(&self, id: &StepId) -> Vec<usize> {
        self.edges.iter().enumerate().filter(|(_, e)| &e.from == id).map(|(i, _)| i).collect()
    }

    /// Subworkflow types this type references directly.
    pub fn referenced_types(&self) -> Vec<&WorkflowTypeId> {
        self.steps
            .iter()
            .filter_map(|s| match &s.kind {
                StepKind::Subworkflow { workflow, .. } => Some(workflow),
                _ => None,
            })
            .collect()
    }

    /// Stable content hash of the definition — the change-management
    /// experiments prove "the private process did not change" by comparing
    /// these.
    pub fn definition_hash(&self) -> u64 {
        let json = serde_json::to_string(self).expect("workflow types serialize");
        // FNV-1a.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Derives a new version with an extra step and edges — used by the
    /// change-management experiments to model local changes like an added
    /// audit step.
    pub fn with_added_step(&self, step: StepDef, edges: Vec<Edge>) -> Result<Self> {
        let mut steps = self.steps.clone();
        steps.push(step);
        let mut all_edges = self.edges.clone();
        all_edges.extend(edges);
        Self::new(self.id.clone(), self.version + 1, steps, all_edges)
    }
}

/// Fluent builder for workflow types.
#[derive(Debug, Default)]
pub struct WorkflowBuilder {
    id: Option<WorkflowTypeId>,
    version: u32,
    steps: Vec<StepDef>,
    edges: Vec<Edge>,
}

impl WorkflowBuilder {
    /// Starts a builder for `id`, version 1.
    pub fn new(id: &str) -> Self {
        Self { id: Some(WorkflowTypeId::new(id)), version: 1, ..Self::default() }
    }

    /// Overrides the version.
    pub fn version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Adds a step.
    pub fn step(mut self, step: StepDef) -> Self {
        self.steps.push(step);
        self
    }

    /// Adds an unconditional edge.
    pub fn edge(mut self, from: &str, to: &str) -> Self {
        self.edges.push(Edge { from: StepId::new(from), to: StepId::new(to), guard: None });
        self
    }

    /// Adds a guarded edge; the guard reads variable `var`.
    pub fn guarded_edge(mut self, from: &str, to: &str, var: &str, expr: &str) -> Self {
        let guard = Condition::parse(var, expr).expect("builder guards are static");
        self.edges.push(Edge { from: StepId::new(from), to: StepId::new(to), guard: Some(guard) });
        self
    }

    /// Finishes and validates.
    pub fn build(self) -> Result<WorkflowType> {
        WorkflowType::new(
            self.id.expect("builder always sets an id"),
            self.version,
            self.steps,
            self.edges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> WorkflowType {
        WorkflowBuilder::new("linear")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .step(StepDef::noop("c"))
            .edge("a", "b")
            .edge("b", "c")
            .build()
            .unwrap()
    }

    #[test]
    fn valid_graph_builds() {
        let wf = linear();
        assert_eq!(wf.start_steps(), vec![&StepId::new("a")]);
        assert_eq!(wf.outgoing(&StepId::new("a")).len(), 1);
        assert_eq!(wf.incoming(&StepId::new("c")).len(), 1);
    }

    #[test]
    fn validation_rejects_bad_graphs() {
        // Duplicate step id.
        assert!(WorkflowBuilder::new("w")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("a"))
            .build()
            .is_err());
        // Unknown edge endpoint.
        assert!(WorkflowBuilder::new("w")
            .step(StepDef::noop("a"))
            .edge("a", "ghost")
            .build()
            .is_err());
        // Cycle.
        assert!(WorkflowBuilder::new("w")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .edge("a", "b")
            .edge("b", "a")
            .build()
            .is_err());
        // Self-loop.
        assert!(WorkflowBuilder::new("w")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .edge("a", "a")
            .build()
            .is_err());
        // Empty.
        assert!(WorkflowBuilder::new("w").build().is_err());
    }

    #[test]
    fn definition_hash_is_stable_and_content_sensitive() {
        assert_eq!(linear().definition_hash(), linear().definition_hash());
        let changed = linear()
            .with_added_step(
                StepDef::noop("audit"),
                vec![Edge { from: StepId::new("c"), to: StepId::new("audit"), guard: None }],
            )
            .unwrap();
        assert_ne!(linear().definition_hash(), changed.definition_hash());
        assert_eq!(changed.version(), 2);
    }

    #[test]
    fn referenced_types_lists_subworkflows() {
        let sub = WorkflowTypeId::new("sub");
        let wf = WorkflowBuilder::new("w").step(StepDef::subworkflow("s", &sub)).build().unwrap();
        assert_eq!(wf.referenced_types(), vec![&sub]);
    }

    #[test]
    fn guarded_edges_parse() {
        let wf = WorkflowBuilder::new("w")
            .step(StepDef::noop("a"))
            .step(StepDef::noop("b"))
            .guarded_edge("a", "b", "po", "document.amount > 10000")
            .build()
            .unwrap();
        assert!(wf.edges()[0].guard.is_some());
    }
}
