//! Property tests for the workflow engine: arbitrary acyclic control
//! flow executes to a fixed point where every step is resolved.

use b2b_wfms::{
    Engine, EngineId, InstanceStatus, StepDef, Variable, WorkflowBuilder, WorkflowTypeId,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random DAG: steps s0..sN, edges only forward (i -> j with i < j), so
/// validation always passes; a random subset of edges is guarded by
/// amount comparisons.
#[derive(Debug, Clone)]
struct RandomDag {
    steps: usize,
    edges: Vec<(usize, usize, Option<bool>)>, // (from, to, guard-that-is-true?)
}

fn dag() -> impl Strategy<Value = RandomDag> {
    (2usize..12).prop_flat_map(|steps| {
        let edges = prop::collection::vec(
            (0usize..steps, 0usize..steps, prop::option::of(any::<bool>())),
            0..steps * 2,
        );
        edges.prop_map(move |raw| {
            let mut edges: Vec<(usize, usize, Option<bool>)> = raw
                .into_iter()
                .filter(|(a, b, _)| a != b)
                .map(|(a, b, g)| if a < b { (a, b, g) } else { (b, a, g) })
                .collect();
            edges.sort();
            edges.dedup_by_key(|(a, b, _)| (*a, *b));
            RandomDag { steps, edges }
        })
    })
}

fn build_and_run(dag: &RandomDag) -> InstanceStatus {
    let mut builder = WorkflowBuilder::new("random");
    for i in 0..dag.steps {
        builder = builder.step(StepDef::noop(&format!("s{i}")));
    }
    for (from, to, guard) in &dag.edges {
        let (from, to) = (format!("s{from}"), format!("s{to}"));
        match guard {
            None => builder = builder.edge(&from, &to),
            // Guards read a seeded PO of amount 10_000: `true` guards
            // compare >= 1, `false` guards compare >= 1_000_000.
            Some(true) => builder = builder.guarded_edge(&from, &to, "po", "document.amount >= 1"),
            Some(false) => {
                builder = builder.guarded_edge(&from, &to, "po", "document.amount >= 1000000")
            }
        }
    }
    let wf = builder.build().expect("forward edges are always acyclic");
    let mut engine = Engine::new(EngineId::new("prop"));
    engine.deploy(wf);
    let mut vars = BTreeMap::new();
    vars.insert(
        "po".to_string(),
        Variable::Document(b2b_document::normalized::sample_po("p", 10_000)),
    );
    let id = engine
        .create_instance(&WorkflowTypeId::new("random"), vars, "s", "t")
        .expect("type deployed");
    engine.run(id).expect("execution is infallible for noop DAGs");
    engine.status(id).expect("instance exists")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any acyclic guarded DAG of no-op steps terminates: either every
    /// step completes or is skipped (never a hang, never a failure).
    #[test]
    fn random_guarded_dags_always_terminate(dag in dag()) {
        prop_assert_eq!(build_and_run(&dag), InstanceStatus::Completed);
    }
}

proptest! {
    /// Dead-path elimination invariant: with all-false guards out of the
    /// start step, everything downstream is skipped but the instance
    /// still completes.
    #[test]
    fn all_false_guards_skip_downstream(steps in 2usize..8) {
        let mut builder = WorkflowBuilder::new("skippy")
            .step(StepDef::noop("s0"));
        for i in 1..steps {
            builder = builder
                .step(StepDef::noop(&format!("s{i}")))
                .guarded_edge("s0", &format!("s{i}"), "po", "document.amount >= 1000000");
        }
        let wf = builder.build().unwrap();
        let mut engine = Engine::new(EngineId::new("prop"));
        engine.deploy(wf);
        let mut vars = BTreeMap::new();
        vars.insert(
            "po".to_string(),
            Variable::Document(b2b_document::normalized::sample_po("p", 10)),
        );
        let id = engine
            .create_instance(&WorkflowTypeId::new("skippy"), vars, "s", "t")
            .unwrap();
        prop_assert_eq!(engine.run(id).unwrap(), InstanceStatus::Completed);
        let inst = engine.db().get_instance(id).unwrap();
        for i in 1..steps {
            prop_assert_eq!(
                inst.step_state(&b2b_wfms::StepId::new(format!("s{i}"))),
                b2b_wfms::engine::StepState::Skipped
            );
        }
    }
}
