//! Change management live (Sections 4.5/4.6): a running integration takes
//! three changes without touching what the paper says must not be touched.
//!
//! 1. A new trading partner joins → only business rules change.
//! 2. An audit step is added to the private process → only that one
//!    definition changes (version bump); bindings and public processes
//!    keep their hashes.
//! 3. Orders keep flowing before, between, and after the changes.
//!
//! Run with: `cargo run --example change_management`

use b2b_core::private_process::responder_private_with_audit;
use b2b_core::scenario::{TwoEnterpriseScenario, BUYER2};
use b2b_core::SessionState;
use b2b_network::FaultConfig;
use b2b_rules::approval::{add_partner, CHECK_NEED_FOR_APPROVAL};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scenario = TwoEnterpriseScenario::new(FaultConfig::reliable(), 99)?;

    // Baseline traffic.
    let c1 = scenario.submit(scenario.po("PO-BEFORE", 12_000)?)?;
    scenario.run_until_quiescent(60_000)?;
    assert_eq!(scenario.seller.session_state(&c1), SessionState::Completed);
    println!("baseline order completed");

    let private_before = scenario.seller.responder_private_hash()?;

    // Change 1: partner TP9 joins. The paper: "adding a new trading
    // partner only requires to add business rules".
    let rules = scenario.seller.rules_mut().function_mut(CHECK_NEED_FOR_APPROVAL)?;
    let rules_before = rules.rules.len();
    add_partner(rules, "SAP", "TP9", 20_000)?;
    add_partner(rules, "Oracle", "TP9", 20_000)?;
    println!(
        "added TP9: {} -> {} rule entries; no workflow definition touched",
        rules_before,
        rules_before + 2
    );
    assert_eq!(scenario.seller.responder_private_hash()?, private_before);

    // Traffic still flows between changes.
    let c2 = scenario.submit(scenario.po("PO-BETWEEN", 8_000)?)?;
    scenario.run_until_quiescent(60_000)?;
    assert_eq!(scenario.seller.session_state(&c2), SessionState::Completed);

    // Change 2: local audit step in the private process (Section 4.5's
    // example of a change that affects nothing else).
    scenario.seller.replace_responder_private(responder_private_with_audit()?)?;
    let private_after = scenario.seller.responder_private_hash()?;
    println!(
        "audit step deployed: private hash {private_before:#x} -> {private_after:#x} \
         (changed, version 2)"
    );
    assert_ne!(private_before, private_after);

    // New sessions run the audited definition; the exchange still works.
    let c3 = scenario.submit(scenario.po("PO-AFTER", 70_000)?)?;
    scenario.run_until_quiescent(60_000)?;
    assert_eq!(scenario.seller.session_state(&c3), SessionState::Completed);
    println!("audited order completed (amount 70000 took the approval path)");

    // The paper's comparison: what would the SAME two changes cost in the
    // naive architecture?
    use b2b_core::baseline::cooperative::IntegrationConfig;
    use b2b_core::change::{advanced_impact, naive_impact, ChangeKind};
    let base = IntegrationConfig::synthetic(2, 2, 2);
    for kind in [ChangeKind::AddPartner, ChangeKind::AddAuditStep] {
        let adv = advanced_impact(kind, &base)?;
        let naive = naive_impact(kind, &base)?;
        println!("{:<24} advanced: {adv} | naive: {naive}", format!("[{}]", kind.name()));
    }
    let _ = BUYER2;
    println!("OK");
    Ok(())
}
