//! Error handling on a hostile network: the RNIF-style reliable layer
//! recovers from loss and duplication; corrupted payloads are rejected at
//! the edge (the paper's "lost messages, incorrect message content or
//! duplicate messages" — Section 1).
//!
//! Run with: `cargo run --example failure_recovery`

use b2b_core::scenario::{TwoEnterpriseScenario, SELLER};
use b2b_core::{PartnerPolicy, SessionState};
use b2b_document::FormatId;
use b2b_network::{
    Bytes, DeliveryStatus, EndpointId, FaultConfig, ReliableConfig, ReliableEndpoint,
    ReliableSnapshot, SimNetwork,
};

/// Crash/restart mid-exchange: the reliable layer's state is serialized to
/// JSON, the endpoint dropped, and a fresh endpoint restored from the
/// snapshot finishes the exchange — without re-delivering anything the
/// receiver already saw and without losing anything still in flight.
fn snapshot_restore_demo() -> Result<(), Box<dyn std::error::Error>> {
    let faults = FaultConfig::flaky(0.3);
    let mut net = SimNetwork::new(faults, 77);
    let config = ReliableConfig::fixed(100, 20);
    let mut sender = ReliableEndpoint::new(EndpointId::new("crashy"), config.clone(), &mut net)?;
    let mut receiver = ReliableEndpoint::new(EndpointId::new("steady"), config.clone(), &mut net)?;
    let to = receiver.id().clone();

    let mut ids = Vec::new();
    for i in 0..6 {
        ids.push(sender.send(&mut net, &to, FormatId::EDI_X12, Bytes::from(format!("po-{i}")))?);
    }
    // Run just long enough that some messages are acknowledged and some are
    // still outstanding, then "crash": persist state and drop the endpoint.
    let mut surfaced = 0usize;
    for _ in 0..6 {
        net.advance(20);
        sender.tick(&mut net)?;
        surfaced += receiver.receive(&mut net)?.len();
        sender.receive(&mut net)?;
    }
    let acked_before =
        ids.iter().filter(|id| sender.delivery_status(id) == DeliveryStatus::Acknowledged).count();
    let json = serde_json::to_string(&sender.snapshot())?;
    drop(sender);
    println!(
        "crashed mid-exchange: {acked_before}/6 acked, snapshot is {} bytes of JSON",
        json.len()
    );

    // Restart from the snapshot and let the exchange finish.
    let snapshot: ReliableSnapshot = serde_json::from_str(&json)?;
    let mut sender = ReliableEndpoint::restore(config, snapshot);
    for _ in 0..2_000 {
        net.advance(10);
        sender.tick(&mut net)?;
        surfaced += receiver.receive(&mut net)?.len();
        sender.receive(&mut net)?;
    }
    let acked_after =
        ids.iter().filter(|id| sender.delivery_status(id) == DeliveryStatus::Acknowledged).count();
    println!("after restore: {acked_after}/6 acked, receiver surfaced {surfaced} (exactly once)");
    assert!(acked_before < 6, "the crash really was mid-exchange");
    assert_eq!(acked_after, 6, "restored endpoint completed every delivery");
    assert_eq!(surfaced, 6, "no loss and no duplicate across the restart");
    Ok(())
}

/// A dead partner is a failure domain, not a tar pit: with the guarded
/// policy, the first few orders to a black-holed seller burn the full
/// retry budget, trip the buyer's circuit breaker, and every order after
/// that fails fast — shed at the wire edge without consuming a single
/// retransmission. Nothing is lost: every session is either dead-lettered
/// (with its delivery failure) or shed with the breaker open.
fn circuit_breaker_demo() -> Result<(), Box<dyn std::error::Error>> {
    let faults = FaultConfig { loss: 1.0, ..FaultConfig::flaky(0.0) };
    let mut scenario = TwoEnterpriseScenario::new(faults, 9)?;
    scenario.buyer.set_partner_policy(PartnerPolicy::guarded());

    println!("seller black-holed; buyer policy: {:?}", scenario.buyer.partner_policy());
    for i in 0..6 {
        let po = scenario.po(&format!("PO-DOOMED-{i}"), 3_000 + i)?;
        let correlation = scenario.submit(po)?;
        let elapsed = scenario.run_until_quiescent(60_000)?;
        println!(
            "PO-DOOMED-{i}: {:?} after {elapsed:>5} ms, breaker {:?}",
            scenario.buyer.session_state(&correlation),
            scenario.buyer.breaker_state(SELLER),
        );
    }

    let health = scenario.buyer.health_stats();
    let stats = scenario.buyer.stats();
    println!(
        "buyer health: {} breaker trips, {} sends shed, {} sessions failed fast, \
         {} shed notices",
        health.breaker_trips, stats.shed, health.fast_failed_sessions, health.shed_notices
    );
    println!(
        "buyer dead letters: {} (slow failures, with their delivery faults)",
        stats.dead_lettered
    );

    assert_eq!(health.breaker_trips, 1, "three permanent failures tripped the breaker once");
    assert!(health.fast_failed_sessions >= 1, "post-trip orders failed fast");
    assert!(stats.shed >= 1, "post-trip sends were shed, not retried");
    assert!(stats.dead_lettered >= 1, "pre-trip failures were quarantined with provenance");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 25% loss, 12% duplication, 10–120 ms latency spread (reordering).
    let faults = FaultConfig::flaky(0.25);
    println!(
        "network profile: loss={:.0}% duplicate={:.0}% latency={}–{} ms",
        faults.loss * 100.0,
        faults.duplicate * 100.0,
        faults.min_delay_ms,
        faults.max_delay_ms
    );
    let mut scenario = TwoEnterpriseScenario::new(faults, 1234)?;

    let mut correlations = Vec::new();
    for i in 0..10 {
        let po = scenario.po(&format!("PO-FLAKY-{i}"), 2_000 + i)?;
        correlations.push(scenario.submit(po)?);
    }
    let elapsed = scenario.run_until_quiescent(600_000)?;

    let completed = correlations
        .iter()
        .filter(|c| scenario.buyer.session_state(c) == SessionState::Completed)
        .count();
    let net = scenario.net.stats();
    println!("{completed}/10 round trips completed after {elapsed} simulated ms");
    println!(
        "network: {} sent, {} delivered, {} lost, {} duplicated",
        net.sent, net.delivered, net.lost, net.duplicated
    );
    println!(
        "seller: {} wire docs received, {} decode failures, {} unroutable",
        scenario.seller.stats().wire_received,
        scenario.seller.stats().decode_failures,
        scenario.seller.stats().unroutable
    );
    println!(
        "seller SAP holds {} orders (exactly-once despite duplicates)",
        scenario.seller.backend("SAP")?.backend().order_count()
    );

    assert_eq!(completed, 10, "retransmission recovered every exchange");
    assert_eq!(
        scenario.seller.backend("SAP")?.backend().order_count(),
        10,
        "no duplicate orders reached the ERP"
    );
    assert_eq!(
        scenario.buyer.stats().dead_lettered + scenario.seller.stats().dead_lettered,
        0,
        "nothing needed quarantining — retransmission healed every fault"
    );
    assert!(net.lost > 0, "the network really was hostile");
    let health = scenario.buyer.health_stats();
    println!(
        "buyer health: {} breaker trips, {} sends shed, {} dead letters \
         (retransmission absorbed the faults; the breaker never armed)",
        health.breaker_trips,
        scenario.buyer.stats().shed,
        scenario.buyer.stats().dead_lettered
    );

    println!();
    circuit_breaker_demo()?;
    println!();
    snapshot_restore_demo()?;
    println!("OK");
    Ok(())
}
