//! Error handling on a hostile network: the RNIF-style reliable layer
//! recovers from loss and duplication; corrupted payloads are rejected at
//! the edge (the paper's "lost messages, incorrect message content or
//! duplicate messages" — Section 1).
//!
//! Run with: `cargo run --example failure_recovery`

use b2b_core::scenario::TwoEnterpriseScenario;
use b2b_core::SessionState;
use b2b_network::FaultConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 25% loss, 12% duplication, 10–120 ms latency spread (reordering).
    let faults = FaultConfig::flaky(0.25);
    println!(
        "network profile: loss={:.0}% duplicate={:.0}% latency={}–{} ms",
        faults.loss * 100.0,
        faults.duplicate * 100.0,
        faults.min_delay_ms,
        faults.max_delay_ms
    );
    let mut scenario = TwoEnterpriseScenario::new(faults, 1234)?;

    let mut correlations = Vec::new();
    for i in 0..10 {
        let po = scenario.po(&format!("PO-FLAKY-{i}"), 2_000 + i)?;
        correlations.push(scenario.submit(po)?);
    }
    let elapsed = scenario.run_until_quiescent(600_000)?;

    let completed = correlations
        .iter()
        .filter(|c| scenario.buyer.session_state(c) == SessionState::Completed)
        .count();
    let net = scenario.net.stats();
    println!("{completed}/10 round trips completed after {elapsed} simulated ms");
    println!(
        "network: {} sent, {} delivered, {} lost, {} duplicated",
        net.sent, net.delivered, net.lost, net.duplicated
    );
    println!(
        "seller: {} wire docs received, {} decode failures, {} unroutable",
        scenario.seller.stats().wire_received,
        scenario.seller.stats().decode_failures,
        scenario.seller.stats().unroutable
    );
    println!(
        "seller SAP holds {} orders (exactly-once despite duplicates)",
        scenario.seller.backend("SAP")?.backend().order_count()
    );

    assert_eq!(completed, 10, "retransmission recovered every exchange");
    assert_eq!(
        scenario.seller.backend("SAP")?.backend().order_count(),
        10,
        "no duplicate orders reached the ERP"
    );
    assert!(net.lost > 0, "the network really was hostile");
    println!("OK");
    Ok(())
}
