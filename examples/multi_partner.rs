//! The Figure 15 configuration live: one seller integrating three trading
//! partners over three different B2B protocols (EDI, RosettaNet, OAGIS)
//! into two back ends (SAP, Oracle) — with ONE private process that never
//! mentions any of them.
//!
//! Run with: `cargo run --example multi_partner`

use b2b_backend::{AckPolicy, ApplicationProcess, OracleSystem, SapSystem};
use b2b_core::engine::IntegrationEngine;
use b2b_core::partner::TradingPartner;
use b2b_core::scenario::seller_rules;
use b2b_core::SessionState;
use b2b_document::normalized::PoBuilder;
use b2b_document::{Currency, Date, Money};
use b2b_network::{FaultConfig, SimNetwork};
use b2b_protocol::edi_roundtrip::edi_roundtrip_processes;
use b2b_protocol::oagis_bod::oagis_po_processes;
use b2b_protocol::pip3a4::pip3a4_processes;
use b2b_protocol::TradingPartnerAgreement;
use b2b_rules::approval::{add_partner, CHECK_NEED_FOR_APPROVAL};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = SimNetwork::new(FaultConfig::reliable(), 7);

    let mut seller = IntegrationEngine::new("GadgetSupply", &mut net)?;
    seller.add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))?;
    seller
        .add_backend(ApplicationProcess::new(Box::new(OracleSystem::new(AckPolicy::AcceptAll))))?;
    seller_rules(&mut seller)?;

    let private_hash_before = seller.responder_private_hash()?;

    // Three buyers on three protocols.
    type ProcPair = (b2b_protocol::PublicProcessDef, b2b_protocol::PublicProcessDef);
    type ProcFn = fn() -> b2b_protocol::Result<ProcPair>;
    let mut buyers = Vec::new();
    let protocols: [(&str, ProcFn); 3] =
        [("TP1", edi_roundtrip_processes), ("TP2", pip3a4_processes), ("TP3", oagis_po_processes)];
    for (name, processes) in protocols {
        let mut buyer = IntegrationEngine::new(name, &mut net)?;
        buyer.add_partner(TradingPartner::new("GadgetSupply"));
        // Each buyer files returned POAs in its own ERP.
        buyer
            .add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))?;
        seller.add_partner(TradingPartner::new(name));
        let (init, resp) = processes()?;
        let agreement = TradingPartnerAgreement::between(
            &format!("{name}-gadget"),
            name,
            "GadgetSupply",
            &init,
            &resp,
            true,
        )?;
        buyer.install_agreement(agreement.clone(), &init, &resp)?;
        seller.install_agreement(agreement.clone(), &init, &resp)?;
        buyers.push((buyer, agreement.id));
    }
    // TP3 joined: the ONLY seller-side change beyond the agreement is two
    // rule entries (Figure 15's point).
    let rules = seller.rules_mut().function_mut(CHECK_NEED_FOR_APPROVAL)?;
    add_partner(rules, "SAP", "TP3", 10_000)?;
    add_partner(rules, "Oracle", "TP3", 10_000)?;

    // Every buyer submits a PO.
    let mut correlations = Vec::new();
    for (i, (buyer, agreement_id)) in buyers.iter_mut().enumerate() {
        let po = PoBuilder::new(
            format!("PO-TP{}-900{i}", i + 1),
            buyer.name(),
            "GadgetSupply",
            Date::new(2001, 9, 17)?,
            Currency::Usd,
        )
        .line("LAPTOP-T23", 45_000, Money::from_units(1, Currency::Usd))?
        .build()?;
        correlations.push(buyer.initiate(&mut net, agreement_id, po)?);
    }

    // Pump the world until everything settles.
    for _ in 0..2_000 {
        net.advance(10);
        for (buyer, _) in buyers.iter_mut() {
            buyer.pump(&mut net)?;
        }
        seller.pump(&mut net)?;
        if net.idle() {
            break;
        }
    }

    for ((buyer, _), correlation) in buyers.iter().zip(&correlations) {
        println!(
            "{} -> seller: buyer={:?} seller={:?}",
            buyer.name(),
            buyer.session_state(correlation),
            seller.session_state(correlation)
        );
        assert_eq!(buyer.session_state(correlation), SessionState::Completed);
    }
    println!(
        "seller stored {} orders in SAP, {} in Oracle",
        seller.backend("SAP")?.backend().order_count(),
        seller.backend("Oracle")?.backend().order_count()
    );
    // TP1/TP3 routed to SAP, TP2 to Oracle — by business rule, not by
    // workflow definition.
    assert_eq!(seller.backend("SAP")?.backend().order_count(), 2);
    assert_eq!(seller.backend("Oracle")?.backend().order_count(), 1);

    let private_hash_after = seller.responder_private_hash()?;
    println!(
        "private process hash: {private_hash_before:#x} -> {private_hash_after:#x} (unchanged={})",
        private_hash_before == private_hash_after
    );
    assert_eq!(private_hash_before, private_hash_after);
    println!("OK");
    Ok(())
}
