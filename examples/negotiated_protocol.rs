//! Negotiated public processes: instead of a pre-defined PIP, the two
//! enterprises agree on a collaboration written in the BPSS-like language
//! (Section 5.1's ebXML path), compile it, and run it — binding to the
//! very same private process the standardized protocols use.
//!
//! Run with: `cargo run --example negotiated_protocol`

use b2b_backend::{AckPolicy, ApplicationProcess, SapSystem};
use b2b_core::engine::IntegrationEngine;
use b2b_core::partner::TradingPartner;
use b2b_core::scenario::seller_rules;
use b2b_core::SessionState;
use b2b_document::normalized::PoBuilder;
use b2b_document::{Currency, Date, Money};
use b2b_network::{FaultConfig, SimNetwork};
use b2b_protocol::bpss::parse_collaboration;
use b2b_protocol::TradingPartnerAgreement;

const NEGOTIATED: &str = r#"
    # Negotiated bilaterally between TP1 and GadgetSupply, 2001-09.
    collaboration negotiated-po using edi-x12 {
      role buyer {
        send purchase-order;
        receive purchase-order-ack;
      }
      role seller {
        receive purchase-order;
        send purchase-order-ack;
      }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and compile the negotiated collaboration. Compilation
    //    checks that the two roles complement each other — the agreement
    //    cannot even be formed from mismatched sequences.
    let collaboration = parse_collaboration(NEGOTIATED)?;
    let processes = collaboration.compile()?;
    let (buyer_proc, seller_proc) = (&processes[0], &processes[1]);
    println!(
        "negotiated `{}` over {}: buyer {} steps, seller {} steps",
        collaboration.name,
        collaboration.format,
        buyer_proc.step_count(),
        seller_proc.step_count()
    );

    // 2. Wire up the enterprises exactly as for a standardized protocol.
    let mut net = SimNetwork::new(FaultConfig::reliable(), 77);
    let mut buyer = IntegrationEngine::new("TP1", &mut net)?;
    let mut seller = IntegrationEngine::new("GadgetSupply", &mut net)?;
    buyer.add_partner(TradingPartner::new("GadgetSupply"));
    seller.add_partner(TradingPartner::new("TP1"));
    buyer.add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))?;
    seller.add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))?;
    seller_rules(&mut seller)?;

    let agreement = TradingPartnerAgreement::between(
        "negotiated-po-agreement",
        "TP1",
        "GadgetSupply",
        buyer_proc,
        seller_proc,
        true,
    )?;
    buyer.install_agreement(agreement.clone(), buyer_proc, seller_proc)?;
    seller.install_agreement(agreement.clone(), buyer_proc, seller_proc)?;

    // 3. Run a round trip under the negotiated protocol.
    let po =
        PoBuilder::new("PO-NEG-1", "TP1", "GadgetSupply", Date::new(2001, 9, 17)?, Currency::Usd)
            .line("LAPTOP-T23", 30_000, Money::from_units(1, Currency::Usd))?
            .build()?;
    let correlation = buyer.initiate(&mut net, &agreement.id, po)?;
    for _ in 0..1_000 {
        net.advance(10);
        buyer.pump(&mut net)?;
        seller.pump(&mut net)?;
        if net.idle() {
            break;
        }
    }

    println!("buyer session:  {:?}", buyer.session_state(&correlation));
    println!("seller session: {:?}", seller.session_state(&correlation));
    assert_eq!(buyer.session_state(&correlation), SessionState::Completed);
    assert_eq!(seller.session_state(&correlation), SessionState::Completed);
    assert_eq!(
        seller.backend("SAP")?.backend().order_status("PO-NEG-1").as_deref(),
        Some("accepted")
    );
    println!("OK");
    Ok(())
}
