//! Quickstart: one EDI purchase-order round trip through the full
//! advanced architecture (public process → binding → private process →
//! back-end binding → ERP, and back).
//!
//! Run with: `cargo run --example quickstart`

use b2b_core::scenario::TwoEnterpriseScenario;
use b2b_core::SessionState;
use b2b_network::FaultConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A buyer (TP1) and a seller (GadgetSupply, running SAP + Oracle)
    // connected by a simulated network with fixed 1 ms latency.
    let mut scenario = TwoEnterpriseScenario::new(FaultConfig::reliable(), 42)?;

    // The buyer's procurement system produces a normalized purchase order…
    let po = scenario.po("PO-2001-4711", 12_000)?;
    println!("submitting {} for {}", po.get("header.po_number")?, po.get("amount")?);

    // …and hands it to the integration engine, which pushes it through
    // the initiator private process, the EDI binding, and the public
    // process onto the wire.
    let correlation = scenario.submit(po)?;
    let elapsed = scenario.run_until_quiescent(60_000)?;

    println!("round trip settled after {elapsed} simulated ms");
    println!("buyer session:  {:?}", scenario.buyer.session_state(&correlation));
    println!("seller session: {:?}", scenario.seller.session_state(&correlation));
    println!(
        "seller SAP order status: {:?}",
        scenario.seller.backend("SAP")?.backend().order_status("PO-2001-4711")
    );
    println!(
        "buyer filed acknowledgments: {}",
        scenario.buyer.backend("SAP")?.backend().poa_count()
    );
    // The wire edge caches codec work: decodes are memoized by payload
    // checksum (hits = re-parses saved) and encode buffers are reused
    // per (format, kind) after the first allocation.
    let cache = scenario.buyer.codec_cache_stats();
    println!(
        "buyer edge codec caches: {} decode hits / {} misses, {} encode buffer reuses / {} allocs",
        cache.decode_hits,
        cache.decode_misses,
        cache.encode_buffer_reuses,
        cache.encode_buffer_allocs
    );
    // Partner health on a clean run: no breaker trips, nothing shed,
    // nothing dead-lettered (see examples/failure_recovery.rs for the
    // unhappy paths).
    let health = scenario.buyer.health_stats();
    println!(
        "buyer partner health: {} breaker trips, {} sends shed, {} dead letters",
        health.breaker_trips,
        scenario.buyer.stats().shed,
        scenario.buyer.stats().dead_lettered
    );

    assert_eq!(scenario.buyer.session_state(&correlation), SessionState::Completed);
    assert_eq!(scenario.seller.session_state(&correlation), SessionState::Completed);
    println!("OK");
    Ok(())
}
