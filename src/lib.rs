//! # Semantic B2B Integration
//!
//! A full reproduction of Bussler's *"The Application of Workflow
//! Technology in Semantic B2B Integration"*: public processes, private
//! processes, bindings, externalized business rules — plus the two
//! rejected architectures as measurable baselines, on a from-scratch
//! workflow engine, document/format stack, rule engine, transformation
//! engine, simulated network, and ERP simulators.
//!
//! This crate is the façade: it re-exports every subsystem crate under a
//! stable name. Start with [`integration::TwoEnterpriseScenario`] (see
//! `examples/quickstart.rs`), then explore:
//!
//! * [`document`] — documents, schemas, wire formats (EDI, XML, …)
//! * [`rules`] — the externalized business-rule engine
//! * [`transform`] — declarative document transformations
//! * [`network`] — simulated network, VAN, RNIF-style reliable messaging
//! * [`wfms`] — the workflow management system (engine + federation)
//! * [`protocol`] — public-process definitions, PIPs, BPSS, agreements
//! * [`backend`] — SAP-like and Oracle-like ERP simulators
//! * [`integration`] — the paper's architecture and its baselines

pub use b2b_backend as backend;
pub use b2b_core as integration;
pub use b2b_document as document;
pub use b2b_network as network;
pub use b2b_protocol as protocol;
pub use b2b_rules as rules;
pub use b2b_transform as transform;
pub use b2b_wfms as wfms;
