/root/repo/target/debug/deps/b2b_backend-25e103d3629c91e6.d: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

/root/repo/target/debug/deps/b2b_backend-25e103d3629c91e6: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

crates/backend/src/lib.rs:
crates/backend/src/adapter.rs:
crates/backend/src/erp.rs:
crates/backend/src/error.rs:
crates/backend/src/oracle_app.rs:
crates/backend/src/orderbook.rs:
crates/backend/src/sap.rs:
