/root/repo/target/debug/deps/b2b_backend-6d447f5ecab417d1.d: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_backend-6d447f5ecab417d1.rmeta: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs Cargo.toml

crates/backend/src/lib.rs:
crates/backend/src/adapter.rs:
crates/backend/src/erp.rs:
crates/backend/src/error.rs:
crates/backend/src/oracle_app.rs:
crates/backend/src/orderbook.rs:
crates/backend/src/sap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
