/root/repo/target/debug/deps/b2b_backend-dbfa0c93cf28af08.d: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

/root/repo/target/debug/deps/libb2b_backend-dbfa0c93cf28af08.rlib: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

/root/repo/target/debug/deps/libb2b_backend-dbfa0c93cf28af08.rmeta: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

crates/backend/src/lib.rs:
crates/backend/src/adapter.rs:
crates/backend/src/erp.rs:
crates/backend/src/error.rs:
crates/backend/src/oracle_app.rs:
crates/backend/src/orderbook.rs:
crates/backend/src/sap.rs:
