/root/repo/target/debug/deps/b2b_bench-25dcf62b4fc8768f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libb2b_bench-25dcf62b4fc8768f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libb2b_bench-25dcf62b4fc8768f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
