/root/repo/target/debug/deps/b2b_bench-6a501bc4a3cf2418.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_bench-6a501bc4a3cf2418.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
