/root/repo/target/debug/deps/b2b_bench-86a0f8fd0c9e10d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/b2b_bench-86a0f8fd0c9e10d2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
