/root/repo/target/debug/deps/b2b_bench-ee0e02996dd459e9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_bench-ee0e02996dd459e9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
