/root/repo/target/debug/deps/b2b_core-1e3d5928ba2056ba.d: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/cooperative.rs crates/core/src/baseline/distributed.rs crates/core/src/binding.rs crates/core/src/change.rs crates/core/src/channels.rs crates/core/src/compile.rs crates/core/src/deadletter.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/metrics.rs crates/core/src/partner.rs crates/core/src/private_process.rs crates/core/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_core-1e3d5928ba2056ba.rmeta: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/cooperative.rs crates/core/src/baseline/distributed.rs crates/core/src/binding.rs crates/core/src/change.rs crates/core/src/channels.rs crates/core/src/compile.rs crates/core/src/deadletter.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/metrics.rs crates/core/src/partner.rs crates/core/src/private_process.rs crates/core/src/scenario.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseline/mod.rs:
crates/core/src/baseline/cooperative.rs:
crates/core/src/baseline/distributed.rs:
crates/core/src/binding.rs:
crates/core/src/change.rs:
crates/core/src/channels.rs:
crates/core/src/compile.rs:
crates/core/src/deadletter.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/figures.rs:
crates/core/src/metrics.rs:
crates/core/src/partner.rs:
crates/core/src/private_process.rs:
crates/core/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
