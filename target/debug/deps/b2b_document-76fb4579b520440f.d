/root/repo/target/debug/deps/b2b_document-76fb4579b520440f.d: crates/document/src/lib.rs crates/document/src/date.rs crates/document/src/document.rs crates/document/src/edi/mod.rs crates/document/src/edi/parse.rs crates/document/src/edi/write.rs crates/document/src/error.rs crates/document/src/formats/mod.rs crates/document/src/formats/edi_x12.rs crates/document/src/formats/oagis.rs crates/document/src/formats/oracle_apps.rs crates/document/src/formats/registry.rs crates/document/src/formats/rosettanet.rs crates/document/src/formats/sap_idoc.rs crates/document/src/formats/util.rs crates/document/src/ids.rs crates/document/src/money.rs crates/document/src/normalized.rs crates/document/src/path.rs crates/document/src/schema.rs crates/document/src/value.rs crates/document/src/xml/mod.rs crates/document/src/xml/parse.rs crates/document/src/xml/write.rs

/root/repo/target/debug/deps/b2b_document-76fb4579b520440f: crates/document/src/lib.rs crates/document/src/date.rs crates/document/src/document.rs crates/document/src/edi/mod.rs crates/document/src/edi/parse.rs crates/document/src/edi/write.rs crates/document/src/error.rs crates/document/src/formats/mod.rs crates/document/src/formats/edi_x12.rs crates/document/src/formats/oagis.rs crates/document/src/formats/oracle_apps.rs crates/document/src/formats/registry.rs crates/document/src/formats/rosettanet.rs crates/document/src/formats/sap_idoc.rs crates/document/src/formats/util.rs crates/document/src/ids.rs crates/document/src/money.rs crates/document/src/normalized.rs crates/document/src/path.rs crates/document/src/schema.rs crates/document/src/value.rs crates/document/src/xml/mod.rs crates/document/src/xml/parse.rs crates/document/src/xml/write.rs

crates/document/src/lib.rs:
crates/document/src/date.rs:
crates/document/src/document.rs:
crates/document/src/edi/mod.rs:
crates/document/src/edi/parse.rs:
crates/document/src/edi/write.rs:
crates/document/src/error.rs:
crates/document/src/formats/mod.rs:
crates/document/src/formats/edi_x12.rs:
crates/document/src/formats/oagis.rs:
crates/document/src/formats/oracle_apps.rs:
crates/document/src/formats/registry.rs:
crates/document/src/formats/rosettanet.rs:
crates/document/src/formats/sap_idoc.rs:
crates/document/src/formats/util.rs:
crates/document/src/ids.rs:
crates/document/src/money.rs:
crates/document/src/normalized.rs:
crates/document/src/path.rs:
crates/document/src/schema.rs:
crates/document/src/value.rs:
crates/document/src/xml/mod.rs:
crates/document/src/xml/parse.rs:
crates/document/src/xml/write.rs:
