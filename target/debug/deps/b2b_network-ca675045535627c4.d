/root/repo/target/debug/deps/b2b_network-ca675045535627c4.d: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs

/root/repo/target/debug/deps/b2b_network-ca675045535627c4: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs

crates/network/src/lib.rs:
crates/network/src/clock.rs:
crates/network/src/error.rs:
crates/network/src/fault.rs:
crates/network/src/message.rs:
crates/network/src/reliable.rs:
crates/network/src/rng.rs:
crates/network/src/sim.rs:
crates/network/src/van.rs:
