/root/repo/target/debug/deps/b2b_network-f208e749f02b4831.d: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_network-f208e749f02b4831.rmeta: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs Cargo.toml

crates/network/src/lib.rs:
crates/network/src/clock.rs:
crates/network/src/error.rs:
crates/network/src/fault.rs:
crates/network/src/message.rs:
crates/network/src/reliable.rs:
crates/network/src/rng.rs:
crates/network/src/sim.rs:
crates/network/src/van.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
