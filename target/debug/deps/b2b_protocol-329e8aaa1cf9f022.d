/root/repo/target/debug/deps/b2b_protocol-329e8aaa1cf9f022.d: crates/protocol/src/lib.rs crates/protocol/src/agreement.rs crates/protocol/src/bpss.rs crates/protocol/src/edi_roundtrip.rs crates/protocol/src/error.rs crates/protocol/src/model.rs crates/protocol/src/notification.rs crates/protocol/src/oagis_bod.rs crates/protocol/src/patterns.rs crates/protocol/src/pip3a4.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_protocol-329e8aaa1cf9f022.rmeta: crates/protocol/src/lib.rs crates/protocol/src/agreement.rs crates/protocol/src/bpss.rs crates/protocol/src/edi_roundtrip.rs crates/protocol/src/error.rs crates/protocol/src/model.rs crates/protocol/src/notification.rs crates/protocol/src/oagis_bod.rs crates/protocol/src/patterns.rs crates/protocol/src/pip3a4.rs Cargo.toml

crates/protocol/src/lib.rs:
crates/protocol/src/agreement.rs:
crates/protocol/src/bpss.rs:
crates/protocol/src/edi_roundtrip.rs:
crates/protocol/src/error.rs:
crates/protocol/src/model.rs:
crates/protocol/src/notification.rs:
crates/protocol/src/oagis_bod.rs:
crates/protocol/src/patterns.rs:
crates/protocol/src/pip3a4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
