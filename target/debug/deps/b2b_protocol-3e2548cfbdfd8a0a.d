/root/repo/target/debug/deps/b2b_protocol-3e2548cfbdfd8a0a.d: crates/protocol/src/lib.rs crates/protocol/src/agreement.rs crates/protocol/src/bpss.rs crates/protocol/src/edi_roundtrip.rs crates/protocol/src/error.rs crates/protocol/src/model.rs crates/protocol/src/notification.rs crates/protocol/src/oagis_bod.rs crates/protocol/src/patterns.rs crates/protocol/src/pip3a4.rs

/root/repo/target/debug/deps/b2b_protocol-3e2548cfbdfd8a0a: crates/protocol/src/lib.rs crates/protocol/src/agreement.rs crates/protocol/src/bpss.rs crates/protocol/src/edi_roundtrip.rs crates/protocol/src/error.rs crates/protocol/src/model.rs crates/protocol/src/notification.rs crates/protocol/src/oagis_bod.rs crates/protocol/src/patterns.rs crates/protocol/src/pip3a4.rs

crates/protocol/src/lib.rs:
crates/protocol/src/agreement.rs:
crates/protocol/src/bpss.rs:
crates/protocol/src/edi_roundtrip.rs:
crates/protocol/src/error.rs:
crates/protocol/src/model.rs:
crates/protocol/src/notification.rs:
crates/protocol/src/oagis_bod.rs:
crates/protocol/src/patterns.rs:
crates/protocol/src/pip3a4.rs:
