/root/repo/target/debug/deps/b2b_rules-02ed9aec07f5a042.d: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_rules-02ed9aec07f5a042.rmeta: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs Cargo.toml

crates/rules/src/lib.rs:
crates/rules/src/approval.rs:
crates/rules/src/error.rs:
crates/rules/src/expr/mod.rs:
crates/rules/src/expr/eval.rs:
crates/rules/src/expr/lexer.rs:
crates/rules/src/expr/parser.rs:
crates/rules/src/registry.rs:
crates/rules/src/rule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
