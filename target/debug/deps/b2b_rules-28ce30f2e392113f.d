/root/repo/target/debug/deps/b2b_rules-28ce30f2e392113f.d: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs

/root/repo/target/debug/deps/b2b_rules-28ce30f2e392113f: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs

crates/rules/src/lib.rs:
crates/rules/src/approval.rs:
crates/rules/src/error.rs:
crates/rules/src/expr/mod.rs:
crates/rules/src/expr/eval.rs:
crates/rules/src/expr/lexer.rs:
crates/rules/src/expr/parser.rs:
crates/rules/src/registry.rs:
crates/rules/src/rule.rs:
