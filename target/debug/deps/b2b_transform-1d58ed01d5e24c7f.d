/root/repo/target/debug/deps/b2b_transform-1d58ed01d5e24c7f.d: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs

/root/repo/target/debug/deps/libb2b_transform-1d58ed01d5e24c7f.rlib: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs

/root/repo/target/debug/deps/libb2b_transform-1d58ed01d5e24c7f.rmeta: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs

crates/transform/src/lib.rs:
crates/transform/src/builtin/mod.rs:
crates/transform/src/builtin/edi.rs:
crates/transform/src/builtin/oagis.rs:
crates/transform/src/builtin/oracle.rs:
crates/transform/src/builtin/rosettanet.rs:
crates/transform/src/builtin/sap.rs:
crates/transform/src/context.rs:
crates/transform/src/error.rs:
crates/transform/src/mapping.rs:
crates/transform/src/program.rs:
crates/transform/src/registry.rs:
