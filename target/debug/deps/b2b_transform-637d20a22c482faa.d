/root/repo/target/debug/deps/b2b_transform-637d20a22c482faa.d: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_transform-637d20a22c482faa.rmeta: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs Cargo.toml

crates/transform/src/lib.rs:
crates/transform/src/builtin/mod.rs:
crates/transform/src/builtin/edi.rs:
crates/transform/src/builtin/oagis.rs:
crates/transform/src/builtin/oracle.rs:
crates/transform/src/builtin/rosettanet.rs:
crates/transform/src/builtin/sap.rs:
crates/transform/src/context.rs:
crates/transform/src/error.rs:
crates/transform/src/mapping.rs:
crates/transform/src/program.rs:
crates/transform/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
