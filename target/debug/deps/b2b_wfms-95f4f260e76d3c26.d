/root/repo/target/debug/deps/b2b_wfms-95f4f260e76d3c26.d: crates/wfms/src/lib.rs crates/wfms/src/db.rs crates/wfms/src/engine/mod.rs crates/wfms/src/engine/instance.rs crates/wfms/src/error.rs crates/wfms/src/federation/mod.rs crates/wfms/src/history.rs crates/wfms/src/model/mod.rs crates/wfms/src/model/condition.rs crates/wfms/src/model/ids.rs crates/wfms/src/model/step.rs crates/wfms/src/model/workflow.rs Cargo.toml

/root/repo/target/debug/deps/libb2b_wfms-95f4f260e76d3c26.rmeta: crates/wfms/src/lib.rs crates/wfms/src/db.rs crates/wfms/src/engine/mod.rs crates/wfms/src/engine/instance.rs crates/wfms/src/error.rs crates/wfms/src/federation/mod.rs crates/wfms/src/history.rs crates/wfms/src/model/mod.rs crates/wfms/src/model/condition.rs crates/wfms/src/model/ids.rs crates/wfms/src/model/step.rs crates/wfms/src/model/workflow.rs Cargo.toml

crates/wfms/src/lib.rs:
crates/wfms/src/db.rs:
crates/wfms/src/engine/mod.rs:
crates/wfms/src/engine/instance.rs:
crates/wfms/src/error.rs:
crates/wfms/src/federation/mod.rs:
crates/wfms/src/history.rs:
crates/wfms/src/model/mod.rs:
crates/wfms/src/model/condition.rs:
crates/wfms/src/model/ids.rs:
crates/wfms/src/model/step.rs:
crates/wfms/src/model/workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
