/root/repo/target/debug/deps/b2b_wfms-df3dabbf665a1212.d: crates/wfms/src/lib.rs crates/wfms/src/db.rs crates/wfms/src/engine/mod.rs crates/wfms/src/engine/instance.rs crates/wfms/src/error.rs crates/wfms/src/federation/mod.rs crates/wfms/src/history.rs crates/wfms/src/model/mod.rs crates/wfms/src/model/condition.rs crates/wfms/src/model/ids.rs crates/wfms/src/model/step.rs crates/wfms/src/model/workflow.rs

/root/repo/target/debug/deps/libb2b_wfms-df3dabbf665a1212.rlib: crates/wfms/src/lib.rs crates/wfms/src/db.rs crates/wfms/src/engine/mod.rs crates/wfms/src/engine/instance.rs crates/wfms/src/error.rs crates/wfms/src/federation/mod.rs crates/wfms/src/history.rs crates/wfms/src/model/mod.rs crates/wfms/src/model/condition.rs crates/wfms/src/model/ids.rs crates/wfms/src/model/step.rs crates/wfms/src/model/workflow.rs

/root/repo/target/debug/deps/libb2b_wfms-df3dabbf665a1212.rmeta: crates/wfms/src/lib.rs crates/wfms/src/db.rs crates/wfms/src/engine/mod.rs crates/wfms/src/engine/instance.rs crates/wfms/src/error.rs crates/wfms/src/federation/mod.rs crates/wfms/src/history.rs crates/wfms/src/model/mod.rs crates/wfms/src/model/condition.rs crates/wfms/src/model/ids.rs crates/wfms/src/model/step.rs crates/wfms/src/model/workflow.rs

crates/wfms/src/lib.rs:
crates/wfms/src/db.rs:
crates/wfms/src/engine/mod.rs:
crates/wfms/src/engine/instance.rs:
crates/wfms/src/error.rs:
crates/wfms/src/federation/mod.rs:
crates/wfms/src/history.rs:
crates/wfms/src/model/mod.rs:
crates/wfms/src/model/condition.rs:
crates/wfms/src/model/ids.rs:
crates/wfms/src/model/step.rs:
crates/wfms/src/model/workflow.rs:
