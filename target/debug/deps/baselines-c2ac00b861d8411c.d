/root/repo/target/debug/deps/baselines-c2ac00b861d8411c.d: tests/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-c2ac00b861d8411c.rmeta: tests/baselines.rs Cargo.toml

tests/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
