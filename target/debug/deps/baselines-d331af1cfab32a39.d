/root/repo/target/debug/deps/baselines-d331af1cfab32a39.d: tests/baselines.rs

/root/repo/target/debug/deps/baselines-d331af1cfab32a39: tests/baselines.rs

tests/baselines.rs:
