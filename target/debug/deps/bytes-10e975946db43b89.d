/root/repo/target/debug/deps/bytes-10e975946db43b89.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-10e975946db43b89.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
