/root/repo/target/debug/deps/bytes-2d369972eeada03b.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-2d369972eeada03b: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
