/root/repo/target/debug/deps/bytes-dc14469f0339cf83.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-dc14469f0339cf83.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-dc14469f0339cf83.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
