/root/repo/target/debug/deps/bytes-f819870183df6d7d.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-f819870183df6d7d.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
