/root/repo/target/debug/deps/change_management-6c51a944ec684f9f.d: tests/change_management.rs Cargo.toml

/root/repo/target/debug/deps/libchange_management-6c51a944ec684f9f.rmeta: tests/change_management.rs Cargo.toml

tests/change_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
