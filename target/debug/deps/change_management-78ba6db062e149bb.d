/root/repo/target/debug/deps/change_management-78ba6db062e149bb.d: tests/change_management.rs

/root/repo/target/debug/deps/change_management-78ba6db062e149bb: tests/change_management.rs

tests/change_management.rs:
