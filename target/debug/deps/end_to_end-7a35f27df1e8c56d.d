/root/repo/target/debug/deps/end_to_end-7a35f27df1e8c56d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7a35f27df1e8c56d: tests/end_to_end.rs

tests/end_to_end.rs:
