/root/repo/target/debug/deps/engine_properties-39186b2bfa0d1226.d: crates/wfms/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-39186b2bfa0d1226: crates/wfms/tests/engine_properties.rs

crates/wfms/tests/engine_properties.rs:
