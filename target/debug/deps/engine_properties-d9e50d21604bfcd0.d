/root/repo/target/debug/deps/engine_properties-d9e50d21604bfcd0.d: crates/wfms/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-d9e50d21604bfcd0.rmeta: crates/wfms/tests/engine_properties.rs Cargo.toml

crates/wfms/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
