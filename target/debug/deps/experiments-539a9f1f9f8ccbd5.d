/root/repo/target/debug/deps/experiments-539a9f1f9f8ccbd5.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-539a9f1f9f8ccbd5: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
