/root/repo/target/debug/deps/experiments-75bc77503c5ba10c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-75bc77503c5ba10c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
