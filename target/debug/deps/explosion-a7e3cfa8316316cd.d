/root/repo/target/debug/deps/explosion-a7e3cfa8316316cd.d: crates/bench/benches/explosion.rs Cargo.toml

/root/repo/target/debug/deps/libexplosion-a7e3cfa8316316cd.rmeta: crates/bench/benches/explosion.rs Cargo.toml

crates/bench/benches/explosion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
