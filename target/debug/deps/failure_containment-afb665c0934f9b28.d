/root/repo/target/debug/deps/failure_containment-afb665c0934f9b28.d: crates/core/tests/failure_containment.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_containment-afb665c0934f9b28.rmeta: crates/core/tests/failure_containment.rs Cargo.toml

crates/core/tests/failure_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
