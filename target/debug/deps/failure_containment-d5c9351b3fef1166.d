/root/repo/target/debug/deps/failure_containment-d5c9351b3fef1166.d: crates/core/tests/failure_containment.rs

/root/repo/target/debug/deps/failure_containment-d5c9351b3fef1166: crates/core/tests/failure_containment.rs

crates/core/tests/failure_containment.rs:
