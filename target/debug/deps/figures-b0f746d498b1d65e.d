/root/repo/target/debug/deps/figures-b0f746d498b1d65e.d: tests/figures.rs

/root/repo/target/debug/deps/figures-b0f746d498b1d65e: tests/figures.rs

tests/figures.rs:
