/root/repo/target/debug/deps/figures-b76057ce88e19c6d.d: tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b76057ce88e19c6d.rmeta: tests/figures.rs Cargo.toml

tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
