/root/repo/target/debug/deps/format_properties-52387f5cb815a26c.d: crates/document/tests/format_properties.rs

/root/repo/target/debug/deps/format_properties-52387f5cb815a26c: crates/document/tests/format_properties.rs

crates/document/tests/format_properties.rs:
