/root/repo/target/debug/deps/format_properties-92e6cbda807d290d.d: crates/document/tests/format_properties.rs Cargo.toml

/root/repo/target/debug/deps/libformat_properties-92e6cbda807d290d.rmeta: crates/document/tests/format_properties.rs Cargo.toml

crates/document/tests/format_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
