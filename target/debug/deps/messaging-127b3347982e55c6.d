/root/repo/target/debug/deps/messaging-127b3347982e55c6.d: crates/bench/benches/messaging.rs Cargo.toml

/root/repo/target/debug/deps/libmessaging-127b3347982e55c6.rmeta: crates/bench/benches/messaging.rs Cargo.toml

crates/bench/benches/messaging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
