/root/repo/target/debug/deps/migration-5a6ebec5256e3735.d: crates/bench/benches/migration.rs Cargo.toml

/root/repo/target/debug/deps/libmigration-5a6ebec5256e3735.rmeta: crates/bench/benches/migration.rs Cargo.toml

crates/bench/benches/migration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
