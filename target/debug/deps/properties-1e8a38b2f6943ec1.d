/root/repo/target/debug/deps/properties-1e8a38b2f6943ec1.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1e8a38b2f6943ec1.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
