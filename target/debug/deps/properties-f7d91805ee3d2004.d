/root/repo/target/debug/deps/properties-f7d91805ee3d2004.d: tests/properties.rs

/root/repo/target/debug/deps/properties-f7d91805ee3d2004: tests/properties.rs

tests/properties.rs:
