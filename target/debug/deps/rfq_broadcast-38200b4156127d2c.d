/root/repo/target/debug/deps/rfq_broadcast-38200b4156127d2c.d: tests/rfq_broadcast.rs

/root/repo/target/debug/deps/rfq_broadcast-38200b4156127d2c: tests/rfq_broadcast.rs

tests/rfq_broadcast.rs:
