/root/repo/target/debug/deps/rfq_broadcast-47b04f3870655771.d: tests/rfq_broadcast.rs Cargo.toml

/root/repo/target/debug/deps/librfq_broadcast-47b04f3870655771.rmeta: tests/rfq_broadcast.rs Cargo.toml

tests/rfq_broadcast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
