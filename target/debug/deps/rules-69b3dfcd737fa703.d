/root/repo/target/debug/deps/rules-69b3dfcd737fa703.d: crates/bench/benches/rules.rs Cargo.toml

/root/repo/target/debug/deps/librules-69b3dfcd737fa703.rmeta: crates/bench/benches/rules.rs Cargo.toml

crates/bench/benches/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
