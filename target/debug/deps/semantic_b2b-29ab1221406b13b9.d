/root/repo/target/debug/deps/semantic_b2b-29ab1221406b13b9.d: src/lib.rs

/root/repo/target/debug/deps/semantic_b2b-29ab1221406b13b9: src/lib.rs

src/lib.rs:
