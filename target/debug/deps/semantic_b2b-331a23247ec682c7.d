/root/repo/target/debug/deps/semantic_b2b-331a23247ec682c7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemantic_b2b-331a23247ec682c7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
