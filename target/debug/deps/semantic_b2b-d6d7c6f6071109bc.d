/root/repo/target/debug/deps/semantic_b2b-d6d7c6f6071109bc.d: src/lib.rs

/root/repo/target/debug/deps/libsemantic_b2b-d6d7c6f6071109bc.rlib: src/lib.rs

/root/repo/target/debug/deps/libsemantic_b2b-d6d7c6f6071109bc.rmeta: src/lib.rs

src/lib.rs:
