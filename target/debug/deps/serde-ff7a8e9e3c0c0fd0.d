/root/repo/target/debug/deps/serde-ff7a8e9e3c0c0fd0.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-ff7a8e9e3c0c0fd0.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
