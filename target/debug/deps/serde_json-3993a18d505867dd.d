/root/repo/target/debug/deps/serde_json-3993a18d505867dd.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-3993a18d505867dd.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
