/root/repo/target/debug/deps/serde_json-43ed0c642715c079.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-43ed0c642715c079.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
