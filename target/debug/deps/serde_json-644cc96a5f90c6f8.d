/root/repo/target/debug/deps/serde_json-644cc96a5f90c6f8.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-644cc96a5f90c6f8: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
