/root/repo/target/debug/deps/serde_json-d989bd95c527138f.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d989bd95c527138f.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d989bd95c527138f.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
