/root/repo/target/debug/deps/transform-71eb3fdf6562034a.d: crates/bench/benches/transform.rs Cargo.toml

/root/repo/target/debug/deps/libtransform-71eb3fdf6562034a.rmeta: crates/bench/benches/transform.rs Cargo.toml

crates/bench/benches/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
