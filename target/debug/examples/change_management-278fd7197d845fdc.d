/root/repo/target/debug/examples/change_management-278fd7197d845fdc.d: examples/change_management.rs Cargo.toml

/root/repo/target/debug/examples/libchange_management-278fd7197d845fdc.rmeta: examples/change_management.rs Cargo.toml

examples/change_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
