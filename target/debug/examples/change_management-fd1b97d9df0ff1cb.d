/root/repo/target/debug/examples/change_management-fd1b97d9df0ff1cb.d: examples/change_management.rs

/root/repo/target/debug/examples/change_management-fd1b97d9df0ff1cb: examples/change_management.rs

examples/change_management.rs:
