/root/repo/target/debug/examples/failure_recovery-7dae33b365a36e7b.d: examples/failure_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_recovery-7dae33b365a36e7b.rmeta: examples/failure_recovery.rs Cargo.toml

examples/failure_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
