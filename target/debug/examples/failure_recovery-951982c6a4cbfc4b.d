/root/repo/target/debug/examples/failure_recovery-951982c6a4cbfc4b.d: examples/failure_recovery.rs

/root/repo/target/debug/examples/failure_recovery-951982c6a4cbfc4b: examples/failure_recovery.rs

examples/failure_recovery.rs:
