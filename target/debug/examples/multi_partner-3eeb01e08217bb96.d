/root/repo/target/debug/examples/multi_partner-3eeb01e08217bb96.d: examples/multi_partner.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_partner-3eeb01e08217bb96.rmeta: examples/multi_partner.rs Cargo.toml

examples/multi_partner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
