/root/repo/target/debug/examples/multi_partner-cc653e1aab182370.d: examples/multi_partner.rs

/root/repo/target/debug/examples/multi_partner-cc653e1aab182370: examples/multi_partner.rs

examples/multi_partner.rs:
