/root/repo/target/debug/examples/negotiated_protocol-9dc3ecd1df02f490.d: examples/negotiated_protocol.rs Cargo.toml

/root/repo/target/debug/examples/libnegotiated_protocol-9dc3ecd1df02f490.rmeta: examples/negotiated_protocol.rs Cargo.toml

examples/negotiated_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
