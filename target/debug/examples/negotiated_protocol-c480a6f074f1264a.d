/root/repo/target/debug/examples/negotiated_protocol-c480a6f074f1264a.d: examples/negotiated_protocol.rs

/root/repo/target/debug/examples/negotiated_protocol-c480a6f074f1264a: examples/negotiated_protocol.rs

examples/negotiated_protocol.rs:
