/root/repo/target/debug/examples/quickstart-48345298d578dd49.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-48345298d578dd49: examples/quickstart.rs

examples/quickstart.rs:
