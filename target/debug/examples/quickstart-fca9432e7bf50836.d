/root/repo/target/debug/examples/quickstart-fca9432e7bf50836.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-fca9432e7bf50836.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
