/root/repo/target/release/deps/b2b_backend-60895750ed8f2de8.d: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

/root/repo/target/release/deps/libb2b_backend-60895750ed8f2de8.rlib: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

/root/repo/target/release/deps/libb2b_backend-60895750ed8f2de8.rmeta: crates/backend/src/lib.rs crates/backend/src/adapter.rs crates/backend/src/erp.rs crates/backend/src/error.rs crates/backend/src/oracle_app.rs crates/backend/src/orderbook.rs crates/backend/src/sap.rs

crates/backend/src/lib.rs:
crates/backend/src/adapter.rs:
crates/backend/src/erp.rs:
crates/backend/src/error.rs:
crates/backend/src/oracle_app.rs:
crates/backend/src/orderbook.rs:
crates/backend/src/sap.rs:
