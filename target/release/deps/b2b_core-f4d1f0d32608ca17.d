/root/repo/target/release/deps/b2b_core-f4d1f0d32608ca17.d: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/cooperative.rs crates/core/src/baseline/distributed.rs crates/core/src/binding.rs crates/core/src/change.rs crates/core/src/channels.rs crates/core/src/compile.rs crates/core/src/deadletter.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/metrics.rs crates/core/src/partner.rs crates/core/src/private_process.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libb2b_core-f4d1f0d32608ca17.rlib: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/cooperative.rs crates/core/src/baseline/distributed.rs crates/core/src/binding.rs crates/core/src/change.rs crates/core/src/channels.rs crates/core/src/compile.rs crates/core/src/deadletter.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/metrics.rs crates/core/src/partner.rs crates/core/src/private_process.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libb2b_core-f4d1f0d32608ca17.rmeta: crates/core/src/lib.rs crates/core/src/baseline/mod.rs crates/core/src/baseline/cooperative.rs crates/core/src/baseline/distributed.rs crates/core/src/binding.rs crates/core/src/change.rs crates/core/src/channels.rs crates/core/src/compile.rs crates/core/src/deadletter.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/figures.rs crates/core/src/metrics.rs crates/core/src/partner.rs crates/core/src/private_process.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/baseline/mod.rs:
crates/core/src/baseline/cooperative.rs:
crates/core/src/baseline/distributed.rs:
crates/core/src/binding.rs:
crates/core/src/change.rs:
crates/core/src/channels.rs:
crates/core/src/compile.rs:
crates/core/src/deadletter.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/figures.rs:
crates/core/src/metrics.rs:
crates/core/src/partner.rs:
crates/core/src/private_process.rs:
crates/core/src/scenario.rs:
