/root/repo/target/release/deps/b2b_network-cd6dbe24b587d01a.d: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs

/root/repo/target/release/deps/libb2b_network-cd6dbe24b587d01a.rlib: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs

/root/repo/target/release/deps/libb2b_network-cd6dbe24b587d01a.rmeta: crates/network/src/lib.rs crates/network/src/clock.rs crates/network/src/error.rs crates/network/src/fault.rs crates/network/src/message.rs crates/network/src/reliable.rs crates/network/src/rng.rs crates/network/src/sim.rs crates/network/src/van.rs

crates/network/src/lib.rs:
crates/network/src/clock.rs:
crates/network/src/error.rs:
crates/network/src/fault.rs:
crates/network/src/message.rs:
crates/network/src/reliable.rs:
crates/network/src/rng.rs:
crates/network/src/sim.rs:
crates/network/src/van.rs:
