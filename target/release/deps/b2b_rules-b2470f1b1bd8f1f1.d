/root/repo/target/release/deps/b2b_rules-b2470f1b1bd8f1f1.d: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs

/root/repo/target/release/deps/libb2b_rules-b2470f1b1bd8f1f1.rlib: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs

/root/repo/target/release/deps/libb2b_rules-b2470f1b1bd8f1f1.rmeta: crates/rules/src/lib.rs crates/rules/src/approval.rs crates/rules/src/error.rs crates/rules/src/expr/mod.rs crates/rules/src/expr/eval.rs crates/rules/src/expr/lexer.rs crates/rules/src/expr/parser.rs crates/rules/src/registry.rs crates/rules/src/rule.rs

crates/rules/src/lib.rs:
crates/rules/src/approval.rs:
crates/rules/src/error.rs:
crates/rules/src/expr/mod.rs:
crates/rules/src/expr/eval.rs:
crates/rules/src/expr/lexer.rs:
crates/rules/src/expr/parser.rs:
crates/rules/src/registry.rs:
crates/rules/src/rule.rs:
