/root/repo/target/release/deps/b2b_transform-239ca52900fe7daa.d: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs

/root/repo/target/release/deps/libb2b_transform-239ca52900fe7daa.rlib: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs

/root/repo/target/release/deps/libb2b_transform-239ca52900fe7daa.rmeta: crates/transform/src/lib.rs crates/transform/src/builtin/mod.rs crates/transform/src/builtin/edi.rs crates/transform/src/builtin/oagis.rs crates/transform/src/builtin/oracle.rs crates/transform/src/builtin/rosettanet.rs crates/transform/src/builtin/sap.rs crates/transform/src/context.rs crates/transform/src/error.rs crates/transform/src/mapping.rs crates/transform/src/program.rs crates/transform/src/registry.rs

crates/transform/src/lib.rs:
crates/transform/src/builtin/mod.rs:
crates/transform/src/builtin/edi.rs:
crates/transform/src/builtin/oagis.rs:
crates/transform/src/builtin/oracle.rs:
crates/transform/src/builtin/rosettanet.rs:
crates/transform/src/builtin/sap.rs:
crates/transform/src/context.rs:
crates/transform/src/error.rs:
crates/transform/src/mapping.rs:
crates/transform/src/program.rs:
crates/transform/src/registry.rs:
