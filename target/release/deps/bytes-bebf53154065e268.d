/root/repo/target/release/deps/bytes-bebf53154065e268.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-bebf53154065e268.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-bebf53154065e268.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
