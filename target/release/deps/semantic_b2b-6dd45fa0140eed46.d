/root/repo/target/release/deps/semantic_b2b-6dd45fa0140eed46.d: src/lib.rs

/root/repo/target/release/deps/libsemantic_b2b-6dd45fa0140eed46.rlib: src/lib.rs

/root/repo/target/release/deps/libsemantic_b2b-6dd45fa0140eed46.rmeta: src/lib.rs

src/lib.rs:
