/root/repo/target/release/deps/serde_json-18d37f3b599dcd5d.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-18d37f3b599dcd5d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-18d37f3b599dcd5d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
