//! The three architectures, compared on the same business interaction:
//! all reach the same outcome; what differs is what crosses the enterprise
//! boundary and how the models grow.

use semantic_b2b::integration::baseline::cooperative::{
    advanced_model_size, naive_model_size, IntegrationConfig,
};
use semantic_b2b::integration::baseline::distributed::run_distributed_roundtrip;
use semantic_b2b::integration::figures::run_figure8_roundtrip;
use semantic_b2b::integration::scenario::TwoEnterpriseScenario;
use semantic_b2b::integration::SessionState;
use semantic_b2b::network::FaultConfig;

#[test]
fn all_three_architectures_complete_the_same_interaction() {
    // 1. Distributed inter-organizational workflow (Section 2).
    let distributed = run_distributed_roundtrip(12_000).unwrap();
    assert!(distributed.completed);
    // 2. Cooperative workflows (Section 3).
    assert!(run_figure8_roundtrip(12_000).unwrap());
    // 3. The advanced architecture (Section 4).
    let mut s = TwoEnterpriseScenario::new(FaultConfig::reliable(), 11).unwrap();
    let c = s.submit(s.po("tri", 12_000).unwrap()).unwrap();
    s.run_until_quiescent(60_000).unwrap();
    assert_eq!(s.buyer.session_state(&c), SessionState::Completed);
}

#[test]
fn exposure_strictly_decreases_across_the_architectures() {
    // Distributed: full types + instance states cross.
    let distributed = run_distributed_roundtrip(12_000).unwrap();
    let distributed_score = distributed.exposure.exposure_score();
    assert!(distributed.exposure.workflow_types_visible >= 1);
    assert!(distributed.exposure.rule_nodes_visible > 0);
    // Advanced: only the agreed message schemas are shared (PO + POA).
    let advanced_score = 2;
    assert!(
        distributed_score > 100 * advanced_score,
        "distributed exposes {distributed_score}, advanced {advanced_score}"
    );
}

#[test]
fn explosion_sweep_is_monotone_and_diverging() {
    let mut last_ratio = 0.0;
    for (p, t, b) in [(2, 2, 2), (3, 4, 2), (4, 8, 4), (6, 16, 4)] {
        let cfg = IntegrationConfig::synthetic(p, t, b);
        let naive = naive_model_size(&cfg).unwrap().workflow_elements();
        let advanced = advanced_model_size(&cfg).unwrap().workflow_elements();
        let ratio = naive as f64 / advanced as f64;
        assert!(
            ratio > last_ratio,
            "ratio must diverge: {ratio:.1} after {last_ratio:.1} at ({p},{t},{b})"
        );
        last_ratio = ratio;
    }
    assert!(last_ratio > 10.0, "the explosion is real: {last_ratio:.1}x");
}

#[test]
fn naive_guard_sizes_grow_linearly_in_partners_per_branch() {
    // Every added partner lengthens the inlined approval disjunction in
    // EVERY (protocol, backend) branch — the figures' core complaint.
    let g4 = naive_model_size(&IntegrationConfig::synthetic(2, 4, 2)).unwrap().guard_nodes;
    let g8 = naive_model_size(&IntegrationConfig::synthetic(2, 8, 2)).unwrap().guard_nodes;
    let g16 = naive_model_size(&IntegrationConfig::synthetic(2, 16, 2)).unwrap().guard_nodes;
    assert!(g8 > g4 && g16 > g8);
    let first_delta = g8 - g4;
    let second_delta = g16 - g8;
    assert!(
        second_delta >= 2 * first_delta - first_delta / 2,
        "per-partner guard growth compounds across branches: +{first_delta}, +{second_delta}"
    );
}

#[test]
fn distributed_migration_counts_match_the_protocol() {
    let outcome = run_distributed_roundtrip(4_000).unwrap();
    assert_eq!(outcome.instances_migrated, 2, "buyer→seller and back");
    assert_eq!(outcome.types_migrated, 1, "type copied once, reused on return");
}
