//! Change management across crates (Sections 4.5/4.6): the locality
//! claims hold on *running* integration engines, not just on paper.

use semantic_b2b::integration::baseline::cooperative::IntegrationConfig;
use semantic_b2b::integration::change::{advanced_impact, naive_impact, ChangeKind};
use semantic_b2b::integration::private_process::responder_private_with_audit;
use semantic_b2b::integration::scenario::TwoEnterpriseScenario;
use semantic_b2b::integration::SessionState;
use semantic_b2b::network::FaultConfig;
use semantic_b2b::rules::approval::{add_partner, CHECK_NEED_FOR_APPROVAL};

#[test]
fn adding_a_partner_at_runtime_touches_only_rules() {
    let mut s = TwoEnterpriseScenario::new(FaultConfig::reliable(), 21).unwrap();
    let hash_before = s.seller.responder_private_hash().unwrap();
    let types_before = s.seller.wf().db().type_count();

    let f = s.seller.rules_mut().function_mut(CHECK_NEED_FOR_APPROVAL).unwrap();
    add_partner(f, "SAP", "TP7", 30_000).unwrap();
    add_partner(f, "Oracle", "TP7", 30_000).unwrap();

    assert_eq!(s.seller.responder_private_hash().unwrap(), hash_before);
    assert_eq!(s.seller.wf().db().type_count(), types_before, "no type deployed or removed");

    // Traffic still flows.
    let c = s.submit(s.po("after-partner", 5_000).unwrap()).unwrap();
    s.run_until_quiescent(60_000).unwrap();
    assert_eq!(s.seller.session_state(&c), SessionState::Completed);
}

#[test]
fn replacing_the_private_process_does_not_disturb_other_layers() {
    let mut s = TwoEnterpriseScenario::new(FaultConfig::reliable(), 22).unwrap();
    // Record the hashes of every non-private type.
    let other_hashes: Vec<(String, u64)> = s
        .seller
        .wf()
        .db()
        .type_ids()
        .into_iter()
        .filter(|id| !id.as_str().starts_with("private:order-processing"))
        .map(|id| (id.to_string(), s.seller.wf().db().get_type(id).unwrap().definition_hash()))
        .collect();

    s.seller.replace_responder_private(responder_private_with_audit().unwrap()).unwrap();

    for (id, before) in &other_hashes {
        let id = semantic_b2b::wfms::WorkflowTypeId::new(id.clone());
        let after = s.seller.wf().db().get_type(&id).unwrap().definition_hash();
        assert_eq!(*before, after, "{id} must be untouched by a private-process change");
    }

    // The audited definition executes.
    let c = s.submit(s.po("audited", 70_000).unwrap()).unwrap();
    s.run_until_quiescent(60_000).unwrap();
    assert_eq!(s.seller.session_state(&c), SessionState::Completed);
}

#[test]
fn impact_table_is_consistent_across_base_sizes() {
    for (p, t, b) in [(1, 1, 1), (2, 2, 2), (4, 8, 4)] {
        let base = IntegrationConfig::synthetic(p, t, b);
        for kind in ChangeKind::all() {
            let adv = advanced_impact(*kind, &base).unwrap();
            let naive = naive_impact(*kind, &base).unwrap();
            assert!(
                adv.elements_to_review <= naive.elements_to_review,
                "({p},{t},{b}) {}",
                kind.name()
            );
        }
    }
}

#[test]
fn advanced_partner_addition_cost_is_independent_of_protocol_count() {
    // The paper's scalability section: partner addition cost must not grow
    // with the number of protocols or the size of existing models.
    let small =
        advanced_impact(ChangeKind::AddPartner, &IntegrationConfig::synthetic(1, 1, 2)).unwrap();
    let large =
        advanced_impact(ChangeKind::AddPartner, &IntegrationConfig::synthetic(8, 32, 2)).unwrap();
    assert_eq!(small.touched_artifacts(), large.touched_artifacts());
    // While the naive cost explodes with the base size.
    let naive_small =
        naive_impact(ChangeKind::AddPartner, &IntegrationConfig::synthetic(1, 1, 2)).unwrap();
    let naive_large =
        naive_impact(ChangeKind::AddPartner, &IntegrationConfig::synthetic(8, 32, 2)).unwrap();
    assert!(naive_large.elements_to_review > 10 * naive_small.elements_to_review);
}
