//! Cross-crate integration tests: the advanced architecture end to end.

use semantic_b2b::backend::{AckPolicy, ApplicationProcess, OracleSystem, SapSystem};
use semantic_b2b::integration::engine::IntegrationEngine;
use semantic_b2b::integration::partner::TradingPartner;
use semantic_b2b::integration::scenario::{
    seller_rules, ScenarioProtocol, TwoEnterpriseScenario, BUYER, SELLER,
};
use semantic_b2b::integration::SessionState;
use semantic_b2b::network::{FaultConfig, ReliableConfig, SimNetwork};
use semantic_b2b::protocol::edi_roundtrip::edi_roundtrip_processes;
use semantic_b2b::protocol::TradingPartnerAgreement;

#[test]
fn the_running_example_roundtrip() {
    let mut s = TwoEnterpriseScenario::new(FaultConfig::reliable(), 1).unwrap();
    let po = s.po("e2e-1", 12_000).unwrap();
    let c = s.submit(po).unwrap();
    s.run_until_quiescent(60_000).unwrap();
    assert_eq!(s.buyer.session_state(&c), SessionState::Completed);
    assert_eq!(s.seller.session_state(&c), SessionState::Completed);
    assert_eq!(
        s.seller.backend("SAP").unwrap().backend().order_status("e2e-1").as_deref(),
        Some("accepted")
    );
}

#[test]
fn every_protocol_reaches_the_same_business_outcome() {
    for protocol in [
        ScenarioProtocol::Edi,
        ScenarioProtocol::RosettaNet,
        ScenarioProtocol::Oagis,
        ScenarioProtocol::Binary,
    ] {
        let mut s =
            TwoEnterpriseScenario::with_protocol(protocol, FaultConfig::reliable(), 1).unwrap();
        let po = s.po("same-outcome", 7_000).unwrap();
        let c = s.submit(po).unwrap();
        s.run_until_quiescent(60_000).unwrap();
        assert_eq!(s.seller.session_state(&c), SessionState::Completed, "{protocol:?}");
        assert_eq!(
            s.seller.backend("SAP").unwrap().backend().order_status("same-outcome").as_deref(),
            Some("accepted"),
            "{protocol:?}: the private process behaves identically under every protocol"
        );
    }
}

#[test]
fn rejection_policy_propagates_back_to_the_buyer() {
    // A seller whose SAP rejects orders above 50 000.
    let mut net = SimNetwork::new(FaultConfig::reliable(), 5);
    let mut buyer = IntegrationEngine::new(BUYER, &mut net).unwrap();
    let mut seller = IntegrationEngine::new(SELLER, &mut net).unwrap();
    buyer.add_partner(TradingPartner::new(SELLER));
    seller.add_partner(TradingPartner::new(BUYER));
    buyer
        .add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))
        .unwrap();
    seller
        .add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::RejectAbove(
            semantic_b2b::document::Money::from_units(
                50_000,
                semantic_b2b::document::Currency::Usd,
            ),
        )))))
        .unwrap();
    seller_rules(&mut seller).unwrap();
    let (init, resp) = edi_roundtrip_processes().unwrap();
    let agreement =
        TradingPartnerAgreement::between("a", BUYER, SELLER, &init, &resp, true).unwrap();
    buyer.install_agreement(agreement.clone(), &init, &resp).unwrap();
    seller.install_agreement(agreement, &init, &resp).unwrap();

    let po = semantic_b2b::document::normalized::PoBuilder::new(
        "too-big",
        BUYER,
        SELLER,
        semantic_b2b::document::Date::new(2001, 9, 17).unwrap(),
        semantic_b2b::document::Currency::Usd,
    )
    .line(
        "LAPTOP-T23",
        60_000,
        semantic_b2b::document::Money::from_units(1, semantic_b2b::document::Currency::Usd),
    )
    .unwrap()
    .build()
    .unwrap();
    let c = buyer.initiate(&mut net, "a", po).unwrap();
    for _ in 0..1000 {
        net.advance(10);
        buyer.pump(&mut net).unwrap();
        seller.pump(&mut net).unwrap();
        if net.idle() {
            break;
        }
    }
    assert_eq!(buyer.session_state(&c), SessionState::Completed);
    // The seller's ERP rejected; the rejection travelled back as an EDI
    // 855 and was filed at the buyer.
    assert_eq!(
        seller.backend("SAP").unwrap().backend().order_status("too-big").as_deref(),
        Some("rejected")
    );
    assert_eq!(buyer.backend("SAP").unwrap().backend().poa_count(), 1);
}

#[test]
fn twenty_concurrent_sessions_under_loss() {
    let mut s = TwoEnterpriseScenario::new(FaultConfig::flaky(0.2), 77).unwrap();
    let mut correlations = Vec::new();
    for i in 0..20 {
        let po = s.po(&format!("conc-{i}"), 1_000 + i).unwrap();
        correlations.push(s.submit(po).unwrap());
    }
    s.run_until_quiescent(600_000).unwrap();
    for c in &correlations {
        assert_eq!(s.buyer.session_state(c), SessionState::Completed, "{c}");
        assert_eq!(s.seller.session_state(c), SessionState::Completed, "{c}");
    }
    assert_eq!(s.seller.backend("SAP").unwrap().backend().order_count(), 20);
    assert_eq!(s.buyer.backend("SAP").unwrap().backend().poa_count(), 20);
}

#[test]
fn total_partition_fails_the_session_cleanly() {
    let mut net = SimNetwork::new(FaultConfig { loss: 1.0, ..FaultConfig::reliable() }, 3);
    let mut buyer =
        IntegrationEngine::with_reliable_config(BUYER, &mut net, ReliableConfig::fixed(50, 2))
            .unwrap();
    let mut seller = IntegrationEngine::new(SELLER, &mut net).unwrap();
    buyer.add_partner(TradingPartner::new(SELLER));
    seller.add_partner(TradingPartner::new(BUYER));
    buyer
        .add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))
        .unwrap();
    seller
        .add_backend(ApplicationProcess::new(Box::new(OracleSystem::new(AckPolicy::AcceptAll))))
        .unwrap();
    seller_rules(&mut seller).unwrap();
    let (init, resp) = edi_roundtrip_processes().unwrap();
    let agreement =
        TradingPartnerAgreement::between("a", BUYER, SELLER, &init, &resp, true).unwrap();
    buyer.install_agreement(agreement.clone(), &init, &resp).unwrap();
    seller.install_agreement(agreement, &init, &resp).unwrap();

    let po = semantic_b2b::document::normalized::sample_po("partitioned", 1_000);
    let c = buyer.initiate(&mut net, "a", po).unwrap();
    for _ in 0..100 {
        net.advance(10);
        buyer.pump(&mut net).unwrap();
        seller.pump(&mut net).unwrap();
    }
    match buyer.session_state(&c) {
        SessionState::Failed(reason) => {
            assert!(reason.contains("failed permanently"), "{reason}")
        }
        other => panic!("expected a failed session, got {other:?}"),
    }
    assert_eq!(buyer.stats().delivery_failures, 1);
    // The seller never saw anything.
    assert_eq!(seller.stats().wire_received, 0);
}

#[test]
fn unknown_sender_is_unroutable_not_fatal() {
    let mut net = SimNetwork::new(FaultConfig::reliable(), 9);
    let mut buyer = IntegrationEngine::new(BUYER, &mut net).unwrap();
    let mut seller = IntegrationEngine::new(SELLER, &mut net).unwrap();
    // Seller does NOT register the buyer as a partner.
    buyer.add_partner(TradingPartner::new(SELLER));
    buyer
        .add_backend(ApplicationProcess::new(Box::new(SapSystem::new(AckPolicy::AcceptAll))))
        .unwrap();
    let (init, resp) = edi_roundtrip_processes().unwrap();
    let agreement =
        TradingPartnerAgreement::between("a", BUYER, SELLER, &init, &resp, true).unwrap();
    buyer.install_agreement(agreement, &init, &resp).unwrap();
    let po = semantic_b2b::document::normalized::sample_po("stranger", 1_000);
    buyer.initiate(&mut net, "a", po).unwrap();
    for _ in 0..50 {
        net.advance(10);
        buyer.pump(&mut net).unwrap();
        seller.pump(&mut net).unwrap();
    }
    assert_eq!(seller.stats().unroutable, 1);
    assert_eq!(seller.stats().sessions_started, 0);
}
