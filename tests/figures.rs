//! Every paper figure, built and exercised through the public API.

use semantic_b2b::integration::baseline::cooperative::naive_model_size;
use semantic_b2b::integration::figures;
use semantic_b2b::protocol::PublicProcessDef;
use semantic_b2b::wfms::StepKind;

#[test]
fn figure2_contains_both_sides_knowledge() {
    let wf = figures::figure2_type().unwrap();
    let json = serde_json::to_string(&wf).unwrap();
    // The single definition carries BOTH approval thresholds — the
    // knowledge-sharing problem in one assert.
    assert!(json.contains("10000"), "buyer threshold inlined");
    assert!(json.contains("550000"), "seller threshold inlined");
}

#[test]
fn figure3_subworkflows_reference_the_erp_types() {
    let types = figures::figure3().unwrap();
    let main = &types[2];
    let subs: Vec<_> =
        main.steps().iter().filter(|s| matches!(s.kind, StepKind::Subworkflow { .. })).collect();
    assert_eq!(subs.len(), 2, "buyer and seller ERP subworkflows");
    assert_eq!(main.referenced_types().len(), 2);
}

#[test]
fn figure8_buyer_has_the_added_control_flow_edge() {
    let (buyer, _) = figures::figure8_types().unwrap();
    // Section 3: after the split, send-po -> receive-poa needs an explicit
    // ordering edge that the joint workflow got for free.
    assert!(buyer
        .edges()
        .iter()
        .any(|e| e.from.as_str() == "send-po" && e.to.as_str() == "receive-poa"));
}

#[test]
fn figure9_and_10_sizes_match_the_narrative() {
    let nine = naive_model_size(&figures::figure9_config()).unwrap();
    let ten = naive_model_size(&figures::figure10_config()).unwrap();
    // "The workflow type has to be changed significantly" — adding one
    // protocol and one partner grows the monolith by more than half.
    let growth = ten.workflow_elements() as f64 / nine.workflow_elements() as f64;
    assert!(growth > 1.5, "figure 10 is {growth:.2}x figure 9");
}

#[test]
fn figure11_processes_pair_up() {
    let processes = figures::figure11_public_processes().unwrap();
    PublicProcessDef::check_complementary(&processes[0], &processes[1]).unwrap();
    PublicProcessDef::check_complementary(&processes[2], &processes[3]).unwrap();
}

#[test]
fn figure12_bindings_hold_all_transformations() {
    for binding in figures::figure12_bindings().unwrap() {
        let transforms =
            binding.steps().iter().filter(|s| matches!(s.kind, StepKind::Transform { .. })).count();
        assert_eq!(transforms, 2, "to-normalized and to-wire");
    }
}

#[test]
fn figure13_private_process_is_partner_free() {
    let wf = figures::figure13_private_process().unwrap();
    let json = serde_json::to_string(&wf).unwrap();
    for name in ["TP1", "TP2", "TP3", "55000", "40000", "edi", "rosettanet"] {
        assert!(!json.contains(name), "private process mentions `{name}`");
    }
    // It carries exactly one generic rule-check step instead.
    assert_eq!(
        wf.steps().iter().filter(|s| matches!(s.kind, StepKind::RuleCheck { .. })).count(),
        1
    );
}

#[test]
fn figure14_backend_bindings_speak_native_formats() {
    let bindings = figures::figure14_backend_bindings().unwrap();
    let json = serde_json::to_string(&bindings[0]).unwrap();
    assert!(json.contains("sap-idoc"));
    let json = serde_json::to_string(&bindings[1]).unwrap();
    assert!(json.contains("oracle-apps"));
}

#[test]
fn figure15_keeps_the_private_process_stable() {
    let (before, after, _) = figures::figure15_addition_is_local().unwrap();
    assert_eq!(before, after);
}
