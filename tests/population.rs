//! Population-scale differential tests: a hub trading with a seeded
//! partner population (mixed wire formats, Zipf-skewed traffic, lurker
//! partners that leave sessions idle forever) must be byte-identical
//! across shard counts, dispatch modes, and the touched-only vs
//! full-partition settle paths — the population-scale complement to the
//! two-enterprise matrix in `tests/sharding.rs`.

use b2b_bench::population::{run_population, PopulationConfig, PopulationPlan, SizeTier};
use proptest::prelude::*;

proptest! {
    // Each case is four full population runs over a 8-partner / 64-session
    // population; a handful of cases samples the seed space.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary population seeds (arbitrary wire-format mixes,
    /// responder/lurker splits, and Zipf traffic shapes), the run
    /// fingerprint — session outcomes, every engine counter, the settle
    /// planner's rounds/touched, the network's delivery counters — is
    /// independent of shard count, dispatch mode, and settle path.
    #[test]
    fn population_runs_are_settle_path_invariant(seed in any::<u64>()) {
        let plan = PopulationPlan::generate(SizeTier::Tiny, seed);
        let base = run_population(&plan, &PopulationConfig::default()).unwrap();
        for (label, cfg) in [
            ("shards=4", PopulationConfig { shards: 4, ..PopulationConfig::default() }),
            (
                "full-partition/4",
                PopulationConfig {
                    shards: 4,
                    full_partition: true,
                    ..PopulationConfig::default()
                },
            ),
            (
                "interpreted/2",
                PopulationConfig {
                    shards: 2,
                    interpreted: true,
                    ..PopulationConfig::default()
                },
            ),
        ] {
            let other = run_population(&plan, &cfg).unwrap();
            prop_assert_eq!(
                &base.fingerprint, &other.fingerprint,
                "{} diverged for seed {}", label, seed
            );
        }
    }
}

#[test]
fn mostly_idle_population_is_settle_path_invariant() {
    // The hostile case for the touched-only planner: ~90% of traffic is
    // aimed at lurker partners, so almost every session goes idle and
    // stays resident. The idle mass must be invisible — same outcomes,
    // same planner counters — whether idle instances stay shard-resident
    // (touched-only) or are moved every round (full partition).
    let mut plan = PopulationPlan::generate(SizeTier::Tiny, 97);
    let lurkers: Vec<u32> = plan
        .partners
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.responder)
        .map(|(i, _)| i as u32)
        .collect();
    let responders: Vec<u32> = plan
        .partners
        .iter()
        .enumerate()
        .filter(|(_, s)| s.responder)
        .map(|(i, _)| i as u32)
        .collect();
    assert!(!lurkers.is_empty() && !responders.is_empty(), "seed 97 must mix behaviours");
    plan.traffic = (0..plan.traffic.len())
        .map(|i| {
            if i % 10 == 0 {
                responders[i / 10 % responders.len()]
            } else {
                lurkers[i % lurkers.len()]
            }
        })
        .collect();
    let idle = plan.traffic.len() - plan.responder_sessions();
    assert!(idle * 2 > plan.traffic.len(), "the mix must be mostly idle");

    let base = run_population(&plan, &PopulationConfig::default()).unwrap();
    assert_eq!(base.completed, plan.responder_sessions(), "responder sessions completed");
    assert_eq!(
        base.settle.instances_resident as usize,
        3 * plan.traffic.len(),
        "each session keeps its public, binding, and private instances resident"
    );
    for (label, cfg) in [
        ("shards=4", PopulationConfig { shards: 4, ..PopulationConfig::default() }),
        (
            "full-partition/4",
            PopulationConfig { shards: 4, full_partition: true, ..PopulationConfig::default() },
        ),
    ] {
        let other = run_population(&plan, &cfg).unwrap();
        assert_eq!(base.fingerprint, other.fingerprint, "{label} diverged on the idle-heavy mix");
    }
}
