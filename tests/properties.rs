//! Property-based tests over the core data structures and the
//! document/transformation pipeline.

use proptest::prelude::*;
use semantic_b2b::document::normalized::{build_poa, check_total_consistency, PoBuilder};
use semantic_b2b::document::Value;
use semantic_b2b::document::{
    Currency, Date, DocKind, Document, FieldPath, FormatId, FormatRegistry, Money,
};
use semantic_b2b::network::{
    Bytes, EndpointId, FaultConfig, ReliableConfig, ReliableEndpoint, SimNetwork,
};
use semantic_b2b::rules::expr::{BinOp, Builtin, PathRoot};
use semantic_b2b::rules::{BusinessRule, Expr, RuleContext, RuleFunction, RuleRegistry};
use semantic_b2b::transform::{
    CompiledProgram, ContextKey, MappingRule, TransformContext, TransformProgram, TransformRegistry,
};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Strategies.

fn currency() -> impl Strategy<Value = Currency> {
    prop_oneof![Just(Currency::Usd), Just(Currency::Eur), Just(Currency::Gbp), Just(Currency::Jpy)]
}

fn date() -> impl Strategy<Value = Date> {
    (1990i32..2100, 1u8..=12, 1u8..=28).prop_map(|(y, m, d)| Date::new(y, m, d).unwrap())
}

prop_compose! {
    fn po_line()(item in "[A-Z]{2,8}-[0-9]{1,4}", qty in 1i64..10_000, cents in 1i64..5_000_000)
        -> (String, i64, i64)
    {
        (item, qty, cents)
    }
}

prop_compose! {
    fn normalized_po()(
        po_number in "[A-Z0-9]{1,12}",
        buyer in "[A-Za-z][A-Za-z ]{0,20}",
        seller in "[A-Za-z][A-Za-z ]{0,20}",
        order_date in date(),
        cur in currency(),
        lines in prop::collection::vec(po_line(), 1..6),
    ) -> Document {
        let mut b = PoBuilder::new(&po_number, buyer.trim(), seller.trim(), order_date, cur);
        for (item, qty, cents) in &lines {
            b = b.line(item, *qty, Money::from_cents(*cents, cur)).unwrap();
        }
        b.build().unwrap()
    }
}

// ---------------------------------------------------------------------
// Primitive invariants.

proptest! {
    #[test]
    fn money_display_parse_roundtrip(cents in -1_000_000_000_000i64..1_000_000_000_000, cur in currency()) {
        let m = Money::from_cents(cents, cur);
        let back = Money::parse(&m.to_string()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn date_plus_days_is_invertible(d in date(), delta in -100_000i64..100_000) {
        let there = d.plus_days(delta);
        let back = there.plus_days(-delta);
        prop_assert_eq!(back, d);
        prop_assert_eq!(there.day_number() - d.day_number(), delta);
    }

    #[test]
    fn date_compact_roundtrip(d in date()) {
        prop_assert_eq!(Date::parse_compact(&d.to_compact()).unwrap(), d);
        prop_assert_eq!(Date::parse_iso(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn field_path_display_parse_roundtrip(
        segs in prop::collection::vec(
            ("[a-z][a-z0-9_]{0,8}", prop::collection::vec(0usize..100, 0..3)),
            1..5,
        ),
    ) {
        // Field segments with any number of interleaved list indexes:
        // `a`, `a[0].b`, `a[3][7].b[1]`, ...
        let mut text = String::new();
        for (i, (name, idxs)) in segs.iter().enumerate() {
            if i > 0 {
                text.push('.');
            }
            text.push_str(name);
            for idx in idxs {
                text.push_str(&format!("[{idx}]"));
            }
        }
        let p = FieldPath::parse(&text).unwrap();
        prop_assert_eq!(p.to_string(), text);
    }

    #[test]
    fn expression_parser_never_panics(input in ".{0,60}") {
        let _ = Expr::parse(&input); // may Err, must not panic
    }

    #[test]
    fn lexable_garbage_never_panics_the_evaluator(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("source".to_string()), Just("target".to_string()),
                Just("document".to_string()), Just("and".to_string()),
                Just("or".to_string()), Just("not".to_string()),
                Just("==".to_string()), Just(">=".to_string()),
                Just("(".to_string()), Just(")".to_string()),
                Just("amount".to_string()), Just(".".to_string()),
                Just("55000".to_string()), Just("\"TP1\"".to_string()),
            ],
            0..12,
        ),
    ) {
        let text = tokens.join(" ");
        if let Ok(expr) = Expr::parse(&text) {
            let doc = semantic_b2b::document::normalized::sample_po("p", 10);
            let _ = expr.eval(&RuleContext::new("TP1", "SAP", &doc)); // may Err
        }
    }
}

// ---------------------------------------------------------------------
// Compiled-vs-interpreted equivalence. The compiled executor's contract is
// observable identity with the rule-tree interpreter: same output
// documents, byte-identical `TransformError`s, same context injection.
// Random programs over a vocabulary of paths that sometimes hit, sometimes
// miss, and sometimes conflict (overwriting earlier writes) exercise both
// the success paths and every error branch, including the compile-time
// presence analysis.

fn source_path() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("header.po_number"),
        Just("header.buyer"),
        Just("header.currency"),
        Just("header.order_date"),
        Just("header"),
        Just("amount"),
        Just("lines"),
        Just("lines[0].item"),
        Just("lines[0].line_total"),
        Just("header.missing"),
        Just("lines[9].item"),
    ]
}

fn target_path() -> impl Strategy<Value = &'static str> {
    // Deliberately few targets, weighted toward one shared prefix, so
    // programs collide: `x` then `x.y` (set through a scalar), `x.y` then
    // `x` then `x.y.z` (re-created parents), optional moves overwriting
    // subtrees earlier rules proved present.
    // (Repeated variants: the vendored `prop_oneof` has no weight syntax.)
    prop_oneof![
        Just("x"),
        Just("x"),
        Just("x"),
        Just("x.y"),
        Just("x.y"),
        Just("x.y"),
        Just("x.y.z"),
        Just("x.y.z"),
        Just("x.y.z"),
        Just("n1"),
        Just("items"),
        Just("out"),
    ]
}

fn body_rule() -> impl Strategy<Value = MappingRule> {
    let from = prop_oneof![
        Just("line_no"),
        Just("item"),
        Just("quantity"),
        Just("unit_price"),
        Just("missing")
    ];
    let to = || prop_oneof![Just("a"), Just("a.b"), Just("code")];
    prop_oneof![
        (from, to(), any::<bool>()).prop_map(|(f, t, opt)| if opt {
            MappingRule::mv_opt(f, t)
        } else {
            MappingRule::mv(f, t)
        }),
        ("[a-z]{1,6}", to()).prop_map(|(s, t)| MappingRule::const_text(t, &s)),
    ]
}

fn mapping_rule() -> impl Strategy<Value = MappingRule> {
    prop_oneof![
        (source_path(), target_path(), any::<bool>()).prop_map(|(f, t, opt)| if opt {
            MappingRule::mv_opt(f, t)
        } else {
            MappingRule::mv(f, t)
        }),
        (target_path(), "[a-z]{1,6}").prop_map(|(t, s)| MappingRule::const_text(t, &s)),
        (source_path(), target_path()).prop_map(|(f, t)| MappingRule::value_map(
            f,
            t,
            &[("USD", "usd"), ("EUR", "eur")]
        )),
        (source_path(), target_path()).prop_map(|(f, t)| MappingRule::pick(
            f,
            "item",
            "LAPTOP-T23",
            "quantity",
            t
        )),
        target_path().prop_map(|t| MappingRule::context(t, ContextKey::Sender)),
        target_path().prop_map(|t| MappingRule::context(t, ContextKey::ControlNumber)),
        (source_path(), target_path()).prop_map(|(f, t)| MappingRule::currency_of(f, t)),
        (source_path(), target_path()).prop_map(|(f, t)| MappingRule::sum_money(
            f,
            "unit_price",
            t
        )),
        (source_path(), target_path(), prop::collection::vec(body_rule(), 0..3))
            .prop_map(|(f, t, rules)| MappingRule::for_each(f, t, rules)),
        (target_path(), prop::collection::vec(body_rule(), 0..3))
            .prop_map(|(t, rules)| MappingRule::append(t, rules)),
    ]
}

proptest! {
    // 512 cases: 128 was too few to surface a presence-analysis bug this
    // vocabulary can express (an optional move overwriting a subtree an
    // earlier rule proved present — now also pinned deterministically in
    // `crates/transform/src/compiled.rs`).
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compiled_execution_matches_the_interpreter(
        po in normalized_po(),
        rules in prop::collection::vec(mapping_rule(), 1..8),
    ) {
        let program = TransformProgram::new(
            DocKind::PurchaseOrder,
            FormatId::NORMALIZED,
            FormatId::custom("prop-target"),
            rules,
        );
        let compiled = CompiledProgram::compile(&program);
        let ctx = TransformContext::new("ACME", "GADGET", "000000042", "i-prop");
        let interpreted = program.apply(&po, &ctx);
        let fast = compiled.apply(&po, &ctx);
        // Whole-result equality: identical documents (body, format, kind,
        // correlation) or byte-identical errors.
        prop_assert_eq!(&interpreted, &fast);

        // Wrong-input dispatch must also agree, message for message.
        let retagged = po.reformatted(FormatId::custom("elsewhere"), po.body().clone());
        prop_assert_eq!(program.apply(&retagged, &ctx), compiled.apply(&retagged, &ctx));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn registry_dispatch_modes_agree_on_builtins(po in normalized_po()) {
        let mut reg = TransformRegistry::with_builtins();
        let ctx = TransformContext::new("ACME", "GADGET", "000000007", "i-d");
        for format in [FormatId::EDI_X12, FormatId::ROSETTANET, FormatId::SAP_IDOC] {
            reg.set_interpreted(false);
            let compiled = reg.transform(&po, &format, &ctx).unwrap();
            reg.set_interpreted(true);
            let interpreted = reg.transform(&po, &format, &ctx).unwrap();
            prop_assert_eq!(&compiled, &interpreted, "{}", format);
        }
    }
}

// ---------------------------------------------------------------------
// Compiled-vs-interpreted rule dispatch. Same contract as the transform
// executor above: the lowered instruction programs must be observably
// identical to the rule-tree interpreter — same values, byte-identical
// `RuleError`s — over random expressions mixing literals of every kind,
// document paths that hit and miss, `source`/`target`, short-circuiting
// `and`/`or`, arithmetic over mixed types, and `date`/`money`/`exists`/
// `len` calls with both valid and invalid arguments.

fn rule_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-10_000i64..10_000).prop_map(Value::Int),
        (-5_000_000i64..5_000_000, currency())
            .prop_map(|(cents, cur)| Value::Money(Money::from_cents(cents, cur))),
        "[A-Za-z0-9 ]{0,8}".prop_map(Value::text),
        date().prop_map(Value::Date),
    ]
}

fn rule_leaf() -> impl Strategy<Value = Expr> {
    // Document paths over the normalized-PO vocabulary: scalar hits, a
    // record, a list, indexed lines, and guaranteed misses.
    let doc_path = prop_oneof![
        Just("amount"),
        Just("header.po_number"),
        Just("header.buyer"),
        Just("header.currency"),
        Just("header.order_date"),
        Just("header"),
        Just("lines"),
        Just("lines[0].item"),
        Just("lines[0].quantity"),
        Just("lines[0].line_total"),
        Just("missing"),
        Just("header.missing"),
        Just("lines[9].item"),
    ];
    prop_oneof![
        rule_literal().prop_map(Expr::Literal),
        doc_path.prop_map(|p| Expr::Path {
            root: PathRoot::Document,
            path: FieldPath::parse(p).unwrap(),
        }),
        Just(Expr::parse("source").unwrap()),
        Just(Expr::parse("target").unwrap()),
        // Paths *below* source/target always fail path resolution — the
        // compiler folds these to in-place failure ops. (Unreachable from
        // the parser, so built directly.)
        Just(Expr::Path { root: PathRoot::Source, path: FieldPath::parse("x").unwrap() }),
    ]
}

fn rule_expr() -> impl Strategy<Value = Expr> {
    rule_leaf().prop_recursive(4, 48, 3, |inner| {
        let op = prop_oneof![
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
        ];
        // (Twice: the vendored `prop_oneof` union is not `Clone`.)
        let builtin = prop_oneof![
            Just(Builtin::Date),
            Just(Builtin::Money),
            Just(Builtin::Exists),
            Just(Builtin::Len),
        ];
        let call_builtin = prop_oneof![
            Just(Builtin::Date),
            Just(Builtin::Money),
            Just(Builtin::Exists),
            Just(Builtin::Len),
        ];
        // Texts `date()` and `money()` sometimes accept, sometimes reject.
        let call_text = prop_oneof![
            Just("2021-07-14"),
            Just("55000 USD"),
            Just("12.50 EUR"),
            Just("not a literal"),
        ];
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
            (op, inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            (builtin, inner).prop_map(|(builtin, arg)| Expr::Call { builtin, arg: Box::new(arg) }),
            (call_builtin, call_text).prop_map(|(builtin, text)| Expr::Call {
                builtin,
                arg: Box::new(Expr::Literal(Value::text(text))),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compiled_rule_dispatch_matches_the_interpreter(
        po in normalized_po(),
        guard in rule_expr(),
        body in rule_expr(),
        source in "[A-Z]{2,4}",
    ) {
        // Two rules with guard and body swapped exercise the whole chain:
        // guard errors, non-boolean guards, fall-through to the second
        // rule, and the no-rule-applies error — through the registry's
        // public dispatch, so the compile cache runs too.
        let function = RuleFunction::new("prop")
            .with_rule(BusinessRule {
                name: "r1".into(),
                guard: guard.clone(),
                body: body.clone(),
            })
            .with_rule(BusinessRule { name: "r2".into(), guard: body, body: guard });
        let mut reg = RuleRegistry::new();
        reg.register(function);
        let compiled = reg.invoke("prop", &source, "SAP", &po);
        reg.set_interpreted(true);
        let interpreted = reg.invoke("prop", &source, "SAP", &po);
        prop_assert_eq!(compiled, interpreted);
    }
}

// ---------------------------------------------------------------------
// Serde wire-shape compatibility. The symbol-keyed record core must keep
// the exact JSON representation of the old string-keyed records: maps in
// lexicographic key order, externally tagged variants, unit variants as
// bare strings. Pinned two ways: a round-trip property over random
// documents, and a checked-in fixture serialized before the flattening.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn document_json_roundtrips_byte_identically(po in normalized_po()) {
        let json = serde_json::to_string(po.body()).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, po.body());
        let again = serde_json::to_string(&back).unwrap();
        prop_assert_eq!(again, json, "re-serialization changed bytes");
    }
}

#[test]
fn pre_flattening_fixture_is_byte_identical() {
    // Serialized by the BTreeMap-keyed record core before the switch to
    // symbol-keyed field vectors; the new core must parse it and emit the
    // same bytes.
    let fixture = include_str!("fixtures/pre_flattening_value.json");
    let value: Value = serde_json::from_str(fixture).unwrap();
    let reencoded = serde_json::to_string(&value).unwrap();
    assert_eq!(reencoded, fixture, "fixture bytes changed under the new record core");
}

// ---------------------------------------------------------------------
// Pipeline invariants: random POs survive every format round trip.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_pos_are_internally_consistent(po in normalized_po()) {
        prop_assert!(check_total_consistency(&po).is_ok());
        prop_assert!(semantic_b2b::document::normalized::po_schema().accepts(&po));
    }

    #[test]
    fn normalized_po_roundtrips_through_every_format(po in normalized_po()) {
        let transforms = TransformRegistry::with_builtins();
        let ctx = TransformContext::new("ACME", "GADGET", "000000001", "i-1");
        for format in [
            FormatId::EDI_X12,
            FormatId::ROSETTANET,
            FormatId::OAGIS,
            FormatId::SAP_IDOC,
            FormatId::ORACLE_APPS,
            FormatId::BINARY,
        ] {
            let down = transforms.transform(&po, &format, &ctx).unwrap();
            let back = transforms.transform(&down, &FormatId::NORMALIZED, &ctx).unwrap();
            prop_assert_eq!(back.body(), po.body(), "{}", format);
        }
    }

    #[test]
    fn wire_codecs_roundtrip_transformed_pos(po in normalized_po()) {
        let transforms = TransformRegistry::with_builtins();
        let formats = FormatRegistry::with_builtins();
        let ctx = TransformContext::new("ACME", "GADGET", "000000001", "i-1");
        for format in [FormatId::EDI_X12, FormatId::ROSETTANET, FormatId::OAGIS, FormatId::BINARY] {
            let wire_doc = transforms.transform(&po, &format, &ctx).unwrap();
            let bytes = formats.encode(&wire_doc).unwrap();
            let decoded = formats.decode(&format, &bytes).unwrap();
            prop_assert_eq!(decoded.body(), wire_doc.body(), "{}", format);
            prop_assert_eq!(decoded.correlation(), wire_doc.correlation());
        }
    }

    #[test]
    fn every_codec_reencodes_to_identical_wire_bytes(po in normalized_po()) {
        // Cross-codec identity: decode -> encode is the identity on wire
        // bytes for all six codecs — a decoded document carries everything
        // its canonical encoding needs, bit for bit.
        let transforms = TransformRegistry::with_builtins();
        let formats = FormatRegistry::with_builtins();
        let ctx = TransformContext::new("ACME", "GADGET", "000000001", "i-1");
        for format in [
            FormatId::EDI_X12,
            FormatId::ROSETTANET,
            FormatId::OAGIS,
            FormatId::SAP_IDOC,
            FormatId::ORACLE_APPS,
            FormatId::BINARY,
        ] {
            let wire_doc = transforms.transform(&po, &format, &ctx).unwrap();
            let bytes = formats.encode(&wire_doc).unwrap();
            let decoded = formats.decode(&format, &bytes).unwrap();
            prop_assert_eq!(&formats.encode(&decoded).unwrap(), &bytes, "{}", format);
        }
    }

    #[test]
    fn borrowed_and_owned_binary_decodes_are_indistinguishable(po in normalized_po()) {
        // The zero-copy decode path (text borrowed from the payload
        // `Bytes`) and the plain path (owned strings) must produce
        // documents that compare equal, re-encode to identical wire
        // bytes, and serialize to the same JSON-ish structural
        // fingerprint — ownership of a `Str` is invisible everywhere.
        let transforms = TransformRegistry::with_builtins();
        let formats = FormatRegistry::with_builtins();
        let ctx = TransformContext::new("ACME", "GADGET", "000000001", "i-1");
        let wire_doc = transforms.transform(&po, &FormatId::BINARY, &ctx).unwrap();
        let wire = Bytes::from(formats.encode(&wire_doc).unwrap());
        let owned = formats.decode(&FormatId::BINARY, &wire).unwrap();
        let borrowed = formats.decode_bytes(&FormatId::BINARY, &wire).unwrap();
        prop_assert_eq!(&borrowed, &owned);
        prop_assert_eq!(&formats.encode(&borrowed).unwrap(), &formats.encode(&owned).unwrap());
        prop_assert_eq!(
            serde_json::to_string(borrowed.body()).unwrap(),
            serde_json::to_string(owned.body()).unwrap(),
            "structural fingerprints diverged between borrowed and owned text"
        );
    }

    #[test]
    fn binary_decoder_never_panics_on_mutated_payloads(
        po in normalized_po(),
        cut in 0usize..=100,
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 0..8),
    ) {
        // Decoder hardening: arbitrary truncations and byte flips of a
        // valid payload (length prefixes, tags, counts, UTF-8 — anything
        // can be hit) must yield Ok or a Parse error, never a panic or
        // an unbounded allocation.
        let transforms = TransformRegistry::with_builtins();
        let formats = FormatRegistry::with_builtins();
        let ctx = TransformContext::new("ACME", "GADGET", "000000001", "i-1");
        let wire_doc = transforms.transform(&po, &FormatId::BINARY, &ctx).unwrap();
        let mut bytes = formats.encode(&wire_doc).unwrap();
        for (at, byte) in &flips {
            let len = bytes.len();
            bytes[at % len] = *byte;
        }
        bytes.truncate(bytes.len() * cut / 100);
        let mutated = Bytes::from(bytes);
        // Both decode paths: plain slice and shared-payload.
        if let Ok(doc) = formats.decode(&FormatId::BINARY, &mutated) {
            // A surviving decode must still re-encode cleanly.
            formats.encode(&doc).unwrap();
        }
        if let Ok(doc) = formats.decode_bytes(&FormatId::BINARY, &mutated) {
            formats.encode(&doc).unwrap();
        }
    }

    #[test]
    fn poas_roundtrip_through_every_format(
        po in normalized_po(),
        status in prop_oneof![
            Just("accepted"),
            Just("rejected"),
            Just("accepted-with-changes")
        ],
        ack in date(),
    ) {
        let poa = build_poa(&po, status, ack).unwrap();
        let transforms = TransformRegistry::with_builtins();
        // POA travels seller -> buyer.
        let seller = po.get("header.seller").unwrap().as_text("s").unwrap().to_string();
        let buyer = po.get("header.buyer").unwrap().as_text("b").unwrap().to_string();
        let ctx = TransformContext::new(&seller, &buyer, "000000002", "i-2");
        for format in [
            FormatId::EDI_X12,
            FormatId::ROSETTANET,
            FormatId::OAGIS,
            FormatId::SAP_IDOC,
            FormatId::ORACLE_APPS,
            FormatId::BINARY,
        ] {
            let down = transforms.transform(&poa, &format, &ctx).unwrap();
            let back = transforms.transform(&down, &FormatId::NORMALIZED, &ctx).unwrap();
            prop_assert_eq!(back.body(), poa.body(), "{}", format);
        }
    }

    #[test]
    fn reliable_messaging_is_exactly_once_or_dead_lettered(
        loss in (0.0f64..1.05).prop_map(|x| x.min(1.0)),
        duplicate in 0.0f64..0.5,
        corrupt in 0.0f64..0.7,
        seed in any::<u64>(),
        count in 1usize..8,
    ) {
        // Under an arbitrary fault mix, every message a sender hands to the
        // reliable layer ends in exactly one observable place: surfaced
        // once (and uncorrupted) at the receiver, or returned by `tick` as
        // permanently failed for dead-lettering — never silently lost, and
        // never surfaced twice.
        let faults = FaultConfig { loss, duplicate, corrupt, min_delay_ms: 1, max_delay_ms: 40 };
        let mut net = SimNetwork::new(faults, seed);
        let config = ReliableConfig::fixed(50, 6);
        let mut a = ReliableEndpoint::new(EndpointId::new("a"), config.clone(), &mut net).unwrap();
        let mut b = ReliableEndpoint::new(EndpointId::new("b"), config, &mut net).unwrap();
        let to = b.id().clone();
        let mut sent = Vec::new();
        for i in 0..count {
            sent.push(
                a.send(&mut net, &to, FormatId::EDI_X12, Bytes::from(format!("m{i}"))).unwrap(),
            );
        }
        let mut delivered = BTreeSet::new();
        let mut dead = BTreeSet::new();
        for _ in 0..1_000 {
            net.advance(10);
            dead.extend(a.tick(&mut net).unwrap().into_iter().map(|e| e.id));
            for env in b.receive(&mut net).unwrap() {
                prop_assert!(env.verify_integrity(), "corrupt payload surfaced");
                let id = env.id.clone();
                prop_assert!(delivered.insert(env.id), "duplicate surfaced: {id}");
            }
            a.receive(&mut net).unwrap();
        }
        for id in &sent {
            prop_assert!(
                delivered.contains(id) || dead.contains(id),
                "message {id} was silently lost"
            );
        }
    }

    #[test]
    fn approval_rule_agrees_with_direct_comparison(
        amount in 0i64..200_000,
        threshold in 0i64..200_000,
    ) {
        let f = semantic_b2b::rules::approval::check_need_for_approval(&[
            semantic_b2b::rules::approval::ApprovalThreshold::new("SAP", "TP1", threshold),
        ]).unwrap();
        let po = semantic_b2b::document::normalized::sample_po("p", amount);
        let result = f.invoke(&RuleContext::new("TP1", "SAP", &po)).unwrap();
        prop_assert_eq!(
            result,
            semantic_b2b::document::Value::Bool(amount >= threshold)
        );
    }
}
