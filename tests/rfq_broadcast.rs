//! The paper's Section 2.3 example, end to end: a buyer broadcasts a
//! request for quotation to several sellers. Each seller prices the RFQ
//! with its own *externalized* rule — precisely the competitive knowledge
//! the paper says must never leave the enterprise — and the buyer
//! receives one quote per seller, routed by (correlation, partner).

use semantic_b2b::document::{
    record, CorrelationId, Currency, Date, DocKind, Document, FormatId, Money, Value,
};
use semantic_b2b::integration::engine::IntegrationEngine;
use semantic_b2b::integration::partner::TradingPartner;
use semantic_b2b::integration::private_process::QUOTE_PRICE_RULE;
use semantic_b2b::integration::SessionState;
use semantic_b2b::network::{FaultConfig, SimNetwork};
use semantic_b2b::protocol::{MessageExchangePattern, TradingPartnerAgreement};
use semantic_b2b::rules::{BusinessRule, RuleFunction};

fn normalized_rfq(rfq_number: &str, item: &str, quantity: i64) -> Document {
    Document::new(
        DocKind::RequestForQuote,
        FormatId::NORMALIZED,
        CorrelationId::for_rfq_number(rfq_number),
        record! {
            "header" => record! {
                "rfq_number" => Value::text(rfq_number),
                "buyer" => Value::text("ACME"),
                "item" => Value::text(item),
                "quantity" => Value::Int(quantity),
                "respond_by" => Value::Date(Date::new(2001, 10, 1).unwrap()),
            },
        },
    )
}

fn quote_rule(price_cents: i64) -> RuleFunction {
    let mut f = RuleFunction::new(QUOTE_PRICE_RULE);
    f.add_rule(
        BusinessRule::parse(
            "flat price",
            "true",
            &format!("money(\"{}.{:02} USD\")", price_cents / 100, price_cents % 100),
        )
        .unwrap(),
    );
    f
}

#[test]
fn broadcast_rfq_collects_one_quote_per_seller() {
    let mut net = SimNetwork::new(FaultConfig::reliable(), 31);
    let mut buyer = IntegrationEngine::new("ACME", &mut net).unwrap();
    let mut sellers = Vec::new();
    // Two sellers with different (secret) pricing rules.
    for (name, price_cents) in [("SellerA", 94_999i64), ("SellerB", 89_950)] {
        let mut seller = IntegrationEngine::new(name, &mut net).unwrap();
        seller.add_partner(TradingPartner::new("ACME"));
        seller.rules_mut().register(quote_rule(price_cents));
        buyer.add_partner(TradingPartner::new(name));
        let (init, resp) = MessageExchangePattern::RequestReply {
            request: DocKind::RequestForQuote,
            reply: DocKind::Quote,
        }
        .role_processes(&format!("rfq-{name}"), FormatId::ROSETTANET)
        .unwrap();
        let agreement = TradingPartnerAgreement::between(
            &format!("rfq-{name}"),
            "ACME",
            name,
            &init,
            &resp,
            true,
        )
        .unwrap();
        buyer.install_agreement(agreement.clone(), &init, &resp).unwrap();
        seller.install_agreement(agreement.clone(), &init, &resp).unwrap();
        sellers.push((seller, agreement.id));
    }

    // Broadcast: the SAME correlation goes to both sellers.
    let rfq = normalized_rfq("RFQ-9", "LAPTOP-T23", 100);
    let correlation = rfq.correlation().clone();
    for (_, agreement_id) in &sellers {
        buyer.initiate(&mut net, agreement_id, rfq.clone()).unwrap();
    }

    for _ in 0..1_000 {
        net.advance(10);
        buyer.pump(&mut net).unwrap();
        for (seller, _) in sellers.iter_mut() {
            seller.pump(&mut net).unwrap();
        }
        if net.idle() {
            break;
        }
    }

    // Per-partner session states on the buyer.
    for (seller, _) in &sellers {
        assert_eq!(
            buyer.session_state_with(&correlation, seller.name()),
            SessionState::Completed,
            "{}",
            seller.name()
        );
        assert_eq!(seller.session_state(&correlation), SessionState::Completed);
    }
    // The aggregate completes only when every leg did.
    assert_eq!(buyer.session_state(&correlation), SessionState::Completed);
    assert_eq!(buyer.stats().sessions_started, 2);
    assert_eq!(buyer.stats().wire_received, 2, "one quote per seller");
}

#[test]
fn quote_prices_come_from_the_sellers_private_rules() {
    // Single seller; verify the quoted price is exactly the rule's value
    // and valid_until derives from the RFQ deadline.
    let mut net = SimNetwork::new(FaultConfig::reliable(), 32);
    let mut buyer = IntegrationEngine::new("ACME", &mut net).unwrap();
    let mut seller = IntegrationEngine::new("SellerA", &mut net).unwrap();
    buyer.add_partner(TradingPartner::new("SellerA"));
    seller.add_partner(TradingPartner::new("ACME"));
    seller.rules_mut().register(quote_rule(94_999));
    let (init, resp) = MessageExchangePattern::RequestReply {
        request: DocKind::RequestForQuote,
        reply: DocKind::Quote,
    }
    .role_processes("rfq", FormatId::ROSETTANET)
    .unwrap();
    let agreement =
        TradingPartnerAgreement::between("rfq", "ACME", "SellerA", &init, &resp, true).unwrap();
    buyer.install_agreement(agreement.clone(), &init, &resp).unwrap();
    seller.install_agreement(agreement, &init, &resp).unwrap();

    let rfq = normalized_rfq("RFQ-1", "WIDGET", 10);
    let correlation = buyer.initiate(&mut net, "rfq", rfq).unwrap();
    for _ in 0..1_000 {
        net.advance(10);
        buyer.pump(&mut net).unwrap();
        seller.pump(&mut net).unwrap();
        if net.idle() {
            break;
        }
    }
    assert_eq!(buyer.session_state(&correlation), SessionState::Completed);
    // The recorded price on the buyer's private process equals the
    // seller's secret rule value.
    let expected = Money::from_cents(94_999, Currency::Usd);
    assert!(buyer.correlations().contains(&correlation), "session exists");
    // Find the buyer's private instance variable through the WFMS.
    let found = buyer
        .wf()
        .db()
        .instance_ids()
        .into_iter()
        .filter_map(|id| buyer.wf().db().get_instance(id).ok())
        .filter_map(|inst| inst.vars.get("recorded_price").cloned())
        .next();
    match found {
        Some(semantic_b2b::wfms::Variable::Value(Value::Money(m))) => {
            assert_eq!(m, expected)
        }
        other => panic!("recorded price missing: {other:?}"),
    }
}
