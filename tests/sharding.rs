//! Sharded execution is an optimization, not a semantics: a run with
//! `shards = N` must be byte-identical to `shards = 1` — same integration
//! and WFMS counters, same session states, same dead letters, same audit
//! history, same simulated clock — under arbitrary network fault mixes.

use proptest::prelude::*;
use semantic_b2b::integration::engine::{IntegrationEngine, IntegrationStats};
use semantic_b2b::integration::metrics::{CodecCacheStats, HealthStats, StageCounters};
use semantic_b2b::integration::scenario::TwoEnterpriseScenario;
use semantic_b2b::integration::{BreakerState, PartnerPolicy, SessionState};
use semantic_b2b::network::FaultConfig;
use semantic_b2b::wfms::HistoryEvent;

/// Everything observable about one engine after a run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    stats: IntegrationStats,
    wf_stats: semantic_b2b::wfms::EngineStats,
    states: Vec<(String, SessionState)>,
    dead_letters: Vec<(u64, String, String)>,
    completed: usize,
    history: Vec<HistoryEvent>,
    cache: CodecCacheStats,
    /// Per-pump-stage counters (not the timers — those are wall-clock).
    stages: StageCounters,
    /// Shed/trip counters of the partner-health subsystem.
    health: HealthStats,
    /// Final circuit-breaker state and trip count per partner.
    breakers: Vec<(String, BreakerState, u64)>,
}

fn fingerprint(engine: &IntegrationEngine) -> Fingerprint {
    Fingerprint {
        stats: engine.stats().clone(),
        wf_stats: engine.wf().stats().clone(),
        states: engine
            .correlations()
            .iter()
            .map(|c| (c.to_string(), engine.session_state(c)))
            .collect(),
        dead_letters: engine
            .dead_letters()
            .iter()
            .map(|l| (l.seq, l.reason.to_string(), l.envelope.id.to_string()))
            .collect(),
        completed: engine.completed_sessions(),
        history: engine.wf().history().to_vec(),
        cache: *engine.codec_cache_stats(),
        stages: engine.stage_profile().counters,
        health: *engine.health_stats(),
        breakers: engine.breaker_states(),
    }
}

/// Runs the two-enterprise scenario with the given worker count and
/// dispatch mode (`interpreted` switches *both* the transform executor
/// and the rule programs to their tree interpreters), returning
/// (elapsed ms, buyer fingerprint, seller fingerprint).
fn run(
    faults: FaultConfig,
    seed: u64,
    pos: usize,
    shards: usize,
    interpreted: bool,
) -> (u64, Fingerprint, Fingerprint) {
    run_with_policy(faults, seed, pos, shards, interpreted, PartnerPolicy::permissive())
}

/// [`run`], with a partner containment policy installed on both engines.
fn run_with_policy(
    faults: FaultConfig,
    seed: u64,
    pos: usize,
    shards: usize,
    interpreted: bool,
    policy: PartnerPolicy,
) -> (u64, Fingerprint, Fingerprint) {
    let mut s = TwoEnterpriseScenario::new(faults, seed).unwrap();
    s.buyer.set_shards(shards);
    s.seller.set_shards(shards);
    // Under `B2B_POOL_STRESS=1` (CI's second pass) every pool round runs
    // at steal-chunk 1 — maximum inter-thread interleaving, the hardest
    // schedule for the determinism bar.
    if std::env::var("B2B_POOL_STRESS").as_deref() == Ok("1") {
        s.buyer.set_steal_chunk(1);
        s.seller.set_steal_chunk(1);
    }
    s.buyer.set_interpreted_transforms(interpreted);
    s.seller.set_interpreted_transforms(interpreted);
    s.buyer.set_interpreted_rules(interpreted);
    s.seller.set_interpreted_rules(interpreted);
    s.buyer.set_partner_policy(policy.clone());
    s.seller.set_partner_policy(policy);
    for i in 0..pos {
        let po = s.po(&format!("po-{i}"), 1_000 + i as i64).unwrap();
        s.submit(po).unwrap();
    }
    let elapsed = s.run_until_quiescent(240_000).unwrap();
    (elapsed, fingerprint(&s.buyer), fingerprint(&s.seller))
}

/// [`run`], with an explicit steal-chunk override on both engines
/// (`0` restores the per-stage defaults).
fn run_with_chunk(
    faults: FaultConfig,
    seed: u64,
    pos: usize,
    shards: usize,
    chunk: usize,
) -> (u64, Fingerprint, Fingerprint) {
    let mut s = TwoEnterpriseScenario::new(faults, seed).unwrap();
    s.buyer.set_shards(shards);
    s.seller.set_shards(shards);
    s.buyer.set_steal_chunk(chunk);
    s.seller.set_steal_chunk(chunk);
    s.buyer.set_partner_policy(PartnerPolicy::permissive());
    s.seller.set_partner_policy(PartnerPolicy::permissive());
    for i in 0..pos {
        let po = s.po(&format!("po-{i}"), 1_000 + i as i64).unwrap();
        s.submit(po).unwrap();
    }
    let elapsed = s.run_until_quiescent(240_000).unwrap();
    (elapsed, fingerprint(&s.buyer), fingerprint(&s.seller))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_runs_are_byte_identical_to_sequential(
        loss in 0.0f64..0.35,
        duplicate in 0.0f64..0.25,
        corrupt in 0.0f64..0.25,
        seed in any::<u64>(),
        pos in 1usize..5,
        shards in 2usize..=4,
    ) {
        let faults = FaultConfig { loss, duplicate, corrupt, min_delay_ms: 1, max_delay_ms: 40 };
        let sequential = run(faults.clone(), seed, pos, 1, false);
        let sharded = run(faults.clone(), seed, pos, shards, false);
        prop_assert_eq!(&sequential.0, &sharded.0, "elapsed simulated time diverged");
        prop_assert_eq!(&sequential.1, &sharded.1, "buyer observables diverged");
        prop_assert_eq!(&sequential.2, &sharded.2, "seller observables diverged");
        // Compiled transform and rule dispatch are the default above; the
        // same run on the tree-walking interpreters must be observably
        // identical, down to the codec cache and stage counters in the
        // fingerprint.
        let interpreted = run(faults, seed, pos, shards, true);
        prop_assert_eq!(&sequential.0, &interpreted.0, "elapsed diverged under interpreter");
        prop_assert_eq!(&sequential.1, &interpreted.1, "buyer diverged under interpreter");
        prop_assert_eq!(&sequential.2, &interpreted.2, "seller diverged under interpreter");
    }

    /// The same identity with the containment subsystem fully armed: a
    /// guarded policy (breakers, bounded queues, finite send budget) under
    /// hostile fault mixes must not introduce any shard-count dependence —
    /// breaker states and shed counters are part of the fingerprint.
    #[test]
    fn guarded_policy_runs_are_byte_identical_across_shards(
        loss in 0.0f64..0.9,
        duplicate in 0.0f64..0.25,
        corrupt in 0.0f64..0.25,
        seed in any::<u64>(),
        pos in 1usize..5,
    ) {
        let faults = FaultConfig { loss, duplicate, corrupt, min_delay_ms: 1, max_delay_ms: 40 };
        let policy = PartnerPolicy { pump_send_budget: 4, ..PartnerPolicy::guarded() };
        let sequential =
            run_with_policy(faults.clone(), seed, pos, 1, false, policy.clone());
        let sharded = run_with_policy(faults, seed, pos, 4, false, policy);
        prop_assert_eq!(&sequential.0, &sharded.0, "elapsed simulated time diverged");
        prop_assert_eq!(&sequential.1, &sharded.1, "buyer observables diverged");
        prop_assert_eq!(&sequential.2, &sharded.2, "seller observables diverged");
    }
}

proptest! {
    // Each case is seven full scenario runs; fewer cases keep the matrix
    // affordable while still sampling the fault space.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pool shape is invisible: for pool sizes 1, 2, and 4 workers
    /// (shards = workers + 1) crossed with steal chunks 1 and 8, every
    /// fingerprint is byte-identical to the sequential run. Chunk 1
    /// maximizes inter-thread interleaving; chunk 8 gives one worker
    /// long uncontended runs — opposite extremes of the steal schedule.
    #[test]
    fn pool_size_and_steal_chunk_are_invisible(
        loss in 0.0f64..0.35,
        duplicate in 0.0f64..0.25,
        seed in any::<u64>(),
        pos in 1usize..5,
    ) {
        let faults = FaultConfig {
            loss, duplicate, corrupt: 0.0, min_delay_ms: 1, max_delay_ms: 40,
        };
        let sequential = run(faults.clone(), seed, pos, 1, false);
        for workers in [1usize, 2, 4] {
            for chunk in [1usize, 8] {
                let pooled = run_with_chunk(faults.clone(), seed, pos, workers + 1, chunk);
                prop_assert_eq!(
                    &sequential.0, &pooled.0,
                    "elapsed diverged at {} workers, chunk {}", workers, chunk
                );
                prop_assert_eq!(
                    &sequential.1, &pooled.1,
                    "buyer diverged at {} workers, chunk {}", workers, chunk
                );
                prop_assert_eq!(
                    &sequential.2, &pooled.2,
                    "seller diverged at {} workers, chunk {}", workers, chunk
                );
            }
        }
    }
}

#[test]
fn flaky_broadcast_workload_is_identical_across_shard_counts() {
    // A deterministic anchor alongside the property: a lossy multi-session
    // run compared across 1, 2, 4, and 8 workers.
    let baseline = run(FaultConfig::flaky(0.3), 7, 8, 1, false);
    for shards in [2, 4, 8] {
        let parallel = run(FaultConfig::flaky(0.3), 7, 8, shards, false);
        assert_eq!(baseline.0, parallel.0, "elapsed diverged at {shards} shards");
        assert_eq!(baseline.1, parallel.1, "buyer diverged at {shards} shards");
        assert_eq!(baseline.2, parallel.2, "seller diverged at {shards} shards");
    }
    // Dispatch mode must be as invisible as the shard count.
    let interpreted = run(FaultConfig::flaky(0.3), 7, 8, 4, true);
    assert_eq!(baseline.0, interpreted.0, "elapsed diverged under interpreter");
    assert_eq!(baseline.1, interpreted.1, "buyer diverged under interpreter");
    assert_eq!(baseline.2, interpreted.2, "seller diverged under interpreter");
    // The run was not trivially clean: sessions really completed.
    assert!(baseline.1.completed >= 1, "at least one session completed");
}

#[test]
fn zero_shards_means_auto_and_is_identical_to_sequential() {
    // `set_shards(0)` (and `B2B_SHARDS=0`) resolves to the machine's
    // real available parallelism, capped only by `B2B_SHARDS_CAP` when
    // that is set. Whatever it resolves to, the run must stay
    // byte-identical to shards = 1.
    let mut probe = TwoEnterpriseScenario::new(FaultConfig::reliable(), 1).unwrap();
    probe.buyer.set_shards(0);
    let auto = probe.buyer.shards();
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    assert!(auto >= 1, "auto shard count must be positive: {auto}");
    assert!(auto <= cores, "auto shard count {auto} exceeds host parallelism {cores}");

    let baseline = run(FaultConfig::flaky(0.3), 13, 4, 1, false);
    let auto_run = run(FaultConfig::flaky(0.3), 13, 4, 0, false);
    assert_eq!(baseline.0, auto_run.0, "elapsed diverged under auto shards");
    assert_eq!(baseline.1, auto_run.1, "buyer diverged under auto shards");
    assert_eq!(baseline.2, auto_run.2, "seller diverged under auto shards");
}

#[test]
fn pool_spawns_no_threads_after_warm_up() {
    // The persistent pool is the point of the exercise: `shards = N`
    // spawns its N-1 workers once (the dispatcher is the Nth), then every
    // subsequent pump reuses them. A fork/join regression would show up
    // here as a growing `threads_spawned`.
    let mut s = TwoEnterpriseScenario::new(FaultConfig::flaky(0.2), 17).unwrap();
    s.buyer.set_shards(4);
    s.seller.set_shards(4);
    for i in 0..4 {
        let po = s.po(&format!("po-warm-{i}"), 1_000 + i).unwrap();
        s.submit(po).unwrap();
    }
    s.run_until_quiescent(240_000).unwrap();
    let warm = (s.buyer.pool_stats(), s.seller.pool_stats());
    for (who, stats) in [("buyer", warm.0), ("seller", warm.1)] {
        assert_eq!(stats.workers, 3, "{who}: 4 shards keep 3 pool workers");
        assert_eq!(stats.threads_spawned, 3, "{who}: warm-up spawns exactly the workers");
        assert!(stats.tasks >= stats.rounds, "{who}: every round ran at least one task");
    }
    // A session's instances all pin to one shard, so an engine whose
    // sessions happen to share a shard settles inline; across both
    // engines the multi-session run must have dispatched real rounds.
    assert!(warm.0.rounds + warm.1.rounds > 0, "no parallel rounds dispatched: {warm:?}");

    for batch in 0..2 {
        for i in 0..4 {
            let po = s.po(&format!("po-steady-{batch}-{i}"), 2_000 + batch * 10 + i).unwrap();
            s.submit(po).unwrap();
        }
        s.run_until_quiescent(240_000).unwrap();
    }
    let steady = (s.buyer.pool_stats(), s.seller.pool_stats());
    assert_eq!(
        (steady.0.threads_spawned, steady.1.threads_spawned),
        (warm.0.threads_spawned, warm.1.threads_spawned),
        "steady-state pumps must spawn zero threads"
    );
    assert!(
        steady.0.rounds + steady.1.rounds > warm.0.rounds + warm.1.rounds,
        "steady-state pumps kept using the pool"
    );
}

#[test]
fn binary_protocol_fingerprints_are_identical_across_shards() {
    // The zero-copy decode path must be as deterministic as the text
    // codecs: with both partners on the compact binary wire format
    // (documents full of borrowed `Str`s at the edge), a lossy run's
    // fingerprint is byte-identical across shard counts and dispatch
    // modes. Text ownership — borrowed slices of the payload `Bytes`
    // versus owned strings after a transform — must be invisible to
    // every counter, state, and audit record.
    use semantic_b2b::integration::scenario::ScenarioProtocol;

    let run_binary = |shards: usize, interpreted: bool| {
        let mut s = TwoEnterpriseScenario::with_protocol(
            ScenarioProtocol::Binary,
            FaultConfig::flaky(0.3),
            23,
        )
        .unwrap();
        s.buyer.set_shards(shards);
        s.seller.set_shards(shards);
        s.buyer.set_interpreted_transforms(interpreted);
        s.seller.set_interpreted_transforms(interpreted);
        s.buyer.set_interpreted_rules(interpreted);
        s.seller.set_interpreted_rules(interpreted);
        s.buyer.set_partner_policy(PartnerPolicy::permissive());
        s.seller.set_partner_policy(PartnerPolicy::permissive());
        for i in 0..6 {
            let po = s.po(&format!("po-bin-{i}"), 1_000 + i).unwrap();
            s.submit(po).unwrap();
        }
        let elapsed = s.run_until_quiescent(240_000).unwrap();
        (elapsed, fingerprint(&s.buyer), fingerprint(&s.seller))
    };

    let baseline = run_binary(1, false);
    assert!(baseline.1.completed >= 1, "at least one binary session completed");
    for (shards, interpreted) in [(4, false), (1, true), (4, true)] {
        let other = run_binary(shards, interpreted);
        assert_eq!(
            baseline.0, other.0,
            "elapsed diverged at {shards} shards (interpreted: {interpreted})"
        );
        assert_eq!(
            baseline.1, other.1,
            "buyer diverged at {shards} shards (interpreted: {interpreted})"
        );
        assert_eq!(
            baseline.2, other.2,
            "seller diverged at {shards} shards (interpreted: {interpreted})"
        );
    }
}

/// [`run`], with a scenario wire protocol and the settle reference path
/// selectable. Returns the fingerprints plus both engines' settle
/// planner counters (rounds / touched), which are part of the
/// determinism bar for the touched-only path.
fn run_settle(
    protocol: semantic_b2b::integration::scenario::ScenarioProtocol,
    faults: FaultConfig,
    seed: u64,
    pos: usize,
    shards: usize,
    interpreted: bool,
    full_partition: bool,
) -> (u64, Fingerprint, Fingerprint, [(u64, u64); 2]) {
    let mut s = TwoEnterpriseScenario::with_protocol(protocol, faults, seed).unwrap();
    s.buyer.set_shards(shards);
    s.seller.set_shards(shards);
    s.buyer.set_interpreted_transforms(interpreted);
    s.seller.set_interpreted_transforms(interpreted);
    s.buyer.set_interpreted_rules(interpreted);
    s.seller.set_interpreted_rules(interpreted);
    s.buyer.set_full_partition_settle(full_partition);
    s.seller.set_full_partition_settle(full_partition);
    s.buyer.set_partner_policy(PartnerPolicy::permissive());
    s.seller.set_partner_policy(PartnerPolicy::permissive());
    for i in 0..pos {
        let po = s.po(&format!("po-{i}"), 1_000 + i as i64).unwrap();
        s.submit(po).unwrap();
    }
    let elapsed = s.run_until_quiescent(240_000).unwrap();
    let planner = [&s.buyer, &s.seller].map(|e| {
        let m = e.settle_metrics();
        (m.rounds, m.touched_total)
    });
    (elapsed, fingerprint(&s.buyer), fingerprint(&s.seller), planner)
}

proptest! {
    // Each case is ten full scenario runs (2 protocols x 5 settle
    // configurations); fewer cases keep the matrix affordable.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The touched-only settle planner is an optimization, not a
    /// semantics: against the full-partition reference path (every
    /// resident instance moved into a shard slice every round) the run
    /// must be byte-identical, across shard counts {1, 2, 4}, both
    /// dispatch modes, and both a text (EDI) and the binary wire
    /// protocol. The planner's own counters (rounds, touched) must also
    /// be shard-count- and dispatch-invariant: slices settle to
    /// quiescence independently inside a round, so how the touched set
    /// is split cannot change what was touched.
    #[test]
    fn touched_only_settle_matches_full_partition_reference(
        loss in 0.0f64..0.35,
        duplicate in 0.0f64..0.25,
        seed in any::<u64>(),
        pos in 1usize..5,
        interpreted in any::<bool>(),
    ) {
        use semantic_b2b::integration::scenario::ScenarioProtocol;
        let faults = FaultConfig {
            loss, duplicate, corrupt: 0.0, min_delay_ms: 1, max_delay_ms: 40,
        };
        for protocol in [ScenarioProtocol::Edi, ScenarioProtocol::Binary] {
            let touched =
                run_settle(protocol, faults.clone(), seed, pos, 1, interpreted, false);
            for shards in [2usize, 4] {
                let sharded =
                    run_settle(protocol, faults.clone(), seed, pos, shards, interpreted, false);
                prop_assert_eq!(
                    &touched.0, &sharded.0,
                    "{:?}: elapsed diverged at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &touched.1, &sharded.1,
                    "{:?}: buyer diverged at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &touched.2, &sharded.2,
                    "{:?}: seller diverged at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &touched.3, &sharded.3,
                    "{:?}: settle planner counters diverged at {} shards", protocol, shards
                );
            }
            for shards in [1usize, 4] {
                let full =
                    run_settle(protocol, faults.clone(), seed, pos, shards, interpreted, true);
                prop_assert_eq!(
                    &touched.0, &full.0,
                    "{:?}: elapsed diverged vs full partition at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &touched.1, &full.1,
                    "{:?}: buyer diverged vs full partition at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &touched.2, &full.2,
                    "{:?}: seller diverged vs full partition at {} shards", protocol, shards
                );
            }
        }
    }
}

/// [`run_settle`], with the emit path selectable: `batched` toggles the
/// pool-batched outbound encode, `coalesce` the per-partner frame
/// coalescing cap (1 = one document per envelope).
#[allow(clippy::too_many_arguments)]
fn run_emit(
    protocol: semantic_b2b::integration::scenario::ScenarioProtocol,
    faults: FaultConfig,
    seed: u64,
    pos: usize,
    shards: usize,
    interpreted: bool,
    batched: bool,
    coalesce: usize,
) -> (u64, Fingerprint, Fingerprint) {
    let mut s = TwoEnterpriseScenario::with_protocol(protocol, faults, seed).unwrap();
    s.buyer.set_shards(shards);
    s.seller.set_shards(shards);
    s.buyer.set_interpreted_transforms(interpreted);
    s.seller.set_interpreted_transforms(interpreted);
    s.buyer.set_interpreted_rules(interpreted);
    s.seller.set_interpreted_rules(interpreted);
    s.buyer.set_batched_emit(batched);
    s.seller.set_batched_emit(batched);
    s.buyer.set_emit_coalesce(coalesce);
    s.seller.set_emit_coalesce(coalesce);
    s.buyer.set_partner_policy(PartnerPolicy::permissive());
    s.seller.set_partner_policy(PartnerPolicy::permissive());
    for i in 0..pos {
        let po = s.po(&format!("po-{i}"), 1_000 + i as i64).unwrap();
        s.submit(po).unwrap();
    }
    let elapsed = s.run_until_quiescent(240_000).unwrap();
    (elapsed, fingerprint(&s.buyer), fingerprint(&s.seller))
}

/// Zeroes the counters that deliberately distinguish the batched emit
/// path from the sequential one (`encode_batches`, `coalesced_frames`,
/// `emit_buffer_reuses`). Everything else in the fingerprint — wire
/// bytes are covered transitively by the stats, states, dead letters,
/// and audit history they produce — must be byte-identical.
fn mask_emit_counters(fp: &mut Fingerprint) {
    fp.stages.encode_batches = 0;
    fp.stages.coalesced_frames = 0;
    fp.stages.emit_buffer_reuses = 0;
}

proptest! {
    // Each case is ten full scenario runs (2 protocols x 5 emit
    // configurations); fewer cases keep the matrix affordable.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The pool-batched emit path is an optimization, not a semantics:
    /// at coalesce = 1 it must be byte-identical to the sequential
    /// per-document path (the only permitted difference is the three
    /// counters that *count* the batching itself), across shard counts
    /// {1, 4}, both dispatch modes, and both a text (EDI) and the binary
    /// wire protocol. At coalesce = 8 the wire framing genuinely changes
    /// (fewer envelopes, different message ids), so the bar there is
    /// shard-invariance: a coalesced run must be byte-identical to
    /// itself across shard counts.
    #[test]
    fn batched_emit_matches_sequential_reference(
        loss in 0.0f64..0.35,
        duplicate in 0.0f64..0.25,
        seed in any::<u64>(),
        pos in 1usize..5,
        interpreted in any::<bool>(),
    ) {
        use semantic_b2b::integration::scenario::ScenarioProtocol;
        let faults = FaultConfig {
            loss, duplicate, corrupt: 0.0, min_delay_ms: 1, max_delay_ms: 40,
        };
        for protocol in [ScenarioProtocol::Edi, ScenarioProtocol::Binary] {
            let (seq_elapsed, mut seq_buyer, mut seq_seller) =
                run_emit(protocol, faults.clone(), seed, pos, 1, interpreted, false, 1);
            // The reference must not itself have batched: sequential
            // mode books no batch counters.
            prop_assert_eq!(seq_buyer.stages.encode_batches, 0);
            prop_assert_eq!(seq_buyer.stages.coalesced_frames, 0);
            mask_emit_counters(&mut seq_buyer);
            mask_emit_counters(&mut seq_seller);

            for shards in [1usize, 4] {
                let (elapsed, mut buyer, mut seller) =
                    run_emit(protocol, faults.clone(), seed, pos, shards, interpreted, true, 1);
                prop_assert_eq!(buyer.stages.coalesced_frames, 0,
                    "{:?}: coalesce=1 must never build a batch frame", protocol);
                mask_emit_counters(&mut buyer);
                mask_emit_counters(&mut seller);
                prop_assert_eq!(
                    &seq_elapsed, &elapsed,
                    "{:?}: elapsed diverged under batched emit at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &seq_buyer, &buyer,
                    "{:?}: buyer diverged under batched emit at {} shards", protocol, shards
                );
                prop_assert_eq!(
                    &seq_seller, &seller,
                    "{:?}: seller diverged under batched emit at {} shards", protocol, shards
                );
            }

            let coalesced =
                run_emit(protocol, faults.clone(), seed, pos, 1, interpreted, true, 8);
            let coalesced_4 =
                run_emit(protocol, faults.clone(), seed, pos, 4, interpreted, true, 8);
            prop_assert_eq!(
                &coalesced.0, &coalesced_4.0,
                "{:?}: elapsed diverged across shards at coalesce 8", protocol
            );
            prop_assert_eq!(
                &coalesced.1, &coalesced_4.1,
                "{:?}: buyer diverged across shards at coalesce 8", protocol
            );
            prop_assert_eq!(
                &coalesced.2, &coalesced_4.2,
                "{:?}: seller diverged across shards at coalesce 8", protocol
            );
        }
    }
}

#[test]
fn coalesced_emit_preserves_business_outcomes() {
    // Coalescing changes the wire framing, not the business: on a clean
    // network (no loss, so the per-message fault draws cannot diverge
    // into different retransmit histories) a coalesce = 8 run must reach
    // the same session states, completions, and document-level
    // integration stats as the sequential per-document path.
    use semantic_b2b::integration::scenario::ScenarioProtocol;
    for protocol in [ScenarioProtocol::Edi, ScenarioProtocol::Binary] {
        let (_, seq_buyer, seq_seller) =
            run_emit(protocol, FaultConfig::reliable(), 19, 6, 1, false, false, 1);
        let (_, buyer, seller) =
            run_emit(protocol, FaultConfig::reliable(), 19, 6, 4, false, true, 8);
        // Each `submit` routes its PO in its own settle pass, so the
        // buyer's requests go out one at a time; it is the responder —
        // whose replies to same-window arrivals share an emit pass —
        // that exercises the coalescer.
        assert!(
            buyer.stages.coalesced_frames + seller.stages.coalesced_frames > 0,
            "{protocol:?}: a six-session clean run must actually coalesce frames \
             (buyer {:?}, seller {:?})",
            buyer.stages,
            seller.stages
        );
        for (who, seq, coalesced) in
            [("buyer", &seq_buyer, &buyer), ("seller", &seq_seller, &seller)]
        {
            assert_eq!(seq.stats, coalesced.stats, "{protocol:?}: {who} stats diverged");
            assert_eq!(seq.states, coalesced.states, "{protocol:?}: {who} states diverged");
            assert_eq!(
                seq.completed, coalesced.completed,
                "{protocol:?}: {who} completions diverged"
            );
            assert_eq!(
                seq.dead_letters.len(),
                coalesced.dead_letters.len(),
                "{protocol:?}: {who} dead-letter count diverged"
            );
        }
        assert!(seq_buyer.completed >= 1, "{protocol:?}: at least one session completed");
    }
}

#[test]
fn decode_memo_hits_track_duplication() {
    // Every duplicated delivery the reliable layer suppresses is counted
    // against the decode memo: the original decode populated the memo, so
    // the duplicate registers as a hit (a re-parse the memo saved).
    let dup_heavy =
        FaultConfig { loss: 0.0, duplicate: 0.6, corrupt: 0.0, min_delay_ms: 1, max_delay_ms: 40 };
    let (_, buyer, seller) = run(dup_heavy, 11, 4, 1, false);
    assert!(
        buyer.cache.decode_hits + seller.cache.decode_hits > 0,
        "duplication-heavy run produced no decode-memo hits: buyer {:?}, seller {:?}",
        buyer.cache,
        seller.cache
    );

    // With duplication disabled (and nothing lost, so nothing is ever
    // retransmitted) every payload is decoded exactly once and the memo
    // never hits — but real decodes still happened.
    let (_, buyer, seller) = run(FaultConfig::reliable(), 11, 4, 1, false);
    assert_eq!(buyer.cache.decode_hits, 0, "clean run must not hit the decode memo");
    assert_eq!(seller.cache.decode_hits, 0, "clean run must not hit the decode memo");
    assert!(buyer.cache.decode_misses > 0, "documents were decoded at the buyer edge");
    assert!(seller.cache.decode_misses > 0, "documents were decoded at the seller edge");
}
