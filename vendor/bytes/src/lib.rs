//! Minimal offline replacement for the `bytes` crate: a cheaply clonable,
//! immutable byte buffer. Only the API surface used by this workspace is
//! provided.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer: a (start, end) view into
/// shared storage, so [`slice`](Bytes::slice) is zero-copy and clones of
/// any view keep the one backing allocation alive.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn whole(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Self { data, start: 0, end }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        Self::whole(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (copied once into the shared buffer).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::whole(Arc::from(bytes))
    }

    /// Copies a slice into a fresh buffer (one exact-size allocation).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::whole(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }

    /// A sub-view of this buffer sharing the same backing storage (no
    /// copy, no allocation beyond the reference-count bump). Panics if
    /// the range is out of bounds, like slicing a `&[u8]`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice {start}..{end} out of bounds");
        Self { data: self.data.clone(), start: self.start + start, end: self.start + end }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

// Equality, ordering, and hashing follow the visible bytes, not the
// backing storage, so a slice equals an independently built buffer with
// the same contents.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::whole(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

// Serialized as a hex string: compact and unambiguous for arbitrary bytes.
impl serde::Serialize for Bytes {
    fn to_content(&self) -> serde::Content {
        let mut hex = String::with_capacity(self.len() * 2);
        for b in self.iter() {
            hex.push_str(&format!("{b:02x}"));
        }
        serde::Content::Str(hex)
    }
}

impl serde::Deserialize for Bytes {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let hex = match content {
            serde::Content::Str(s) => s,
            other => {
                return Err(serde::Error::custom(format!(
                    "Bytes expects a hex string, got {}",
                    other.kind()
                )))
            }
        };
        if hex.len() % 2 != 0 {
            return Err(serde::Error::custom("Bytes hex string has odd length"));
        }
        let mut out = Vec::with_capacity(hex.len() / 2);
        let digits = hex.as_bytes();
        for pair in digits.chunks(2) {
            let hi = (pair[0] as char).to_digit(16);
            let lo = (pair[1] as char).to_digit(16);
            match (hi, lo) {
                (Some(hi), Some(lo)) => out.push((hi * 16 + lo) as u8),
                _ => return Err(serde::Error::custom("Bytes hex string has non-hex digit")),
            }
        }
        Ok(Self::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("hi".to_string()).as_ref(), b"hi");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slices_are_zero_copy_views() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = a.slice(1..4);
        assert_eq!(mid.as_ref(), &[2, 3, 4]);
        assert_eq!(mid.as_ptr(), unsafe { a.as_ptr().add(1) }, "no copy");
        assert_eq!(mid.slice(1..).as_ref(), &[3, 4], "views re-slice");
        assert_eq!(mid, Bytes::from(vec![2, 3, 4]), "equality follows contents");
        assert!(a.slice(..0).is_empty());
        assert_eq!(a.slice(..), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn serde_roundtrip() {
        let b = Bytes::from(vec![0x00, 0xff, 0x7f, b'a']);
        let content = serde::Serialize::to_content(&b);
        let back: Bytes = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(back, b);
    }
}
