//! Minimal offline replacement for the `bytes` crate: a cheaply clonable,
//! immutable byte buffer. Only the API surface used by this workspace is
//! provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (copied once into the shared buffer).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Copies a slice into a fresh buffer (one exact-size allocation).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

// Serialized as a hex string: compact and unambiguous for arbitrary bytes.
impl serde::Serialize for Bytes {
    fn to_content(&self) -> serde::Content {
        let mut hex = String::with_capacity(self.0.len() * 2);
        for b in self.0.iter() {
            hex.push_str(&format!("{b:02x}"));
        }
        serde::Content::Str(hex)
    }
}

impl serde::Deserialize for Bytes {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        let hex = match content {
            serde::Content::Str(s) => s,
            other => {
                return Err(serde::Error::custom(format!(
                    "Bytes expects a hex string, got {}",
                    other.kind()
                )))
            }
        };
        if hex.len() % 2 != 0 {
            return Err(serde::Error::custom("Bytes hex string has odd length"));
        }
        let mut out = Vec::with_capacity(hex.len() / 2);
        let digits = hex.as_bytes();
        for pair in digits.chunks(2) {
            let hi = (pair[0] as char).to_digit(16);
            let lo = (pair[1] as char).to_digit(16);
            match (hi, lo) {
                (Some(hi), Some(lo)) => out.push((hi * 16 + lo) as u8),
                _ => return Err(serde::Error::custom("Bytes hex string has non-hex digit")),
            }
        }
        Ok(Self::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("hi".to_string()).as_ref(), b"hi");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn serde_roundtrip() {
        let b = Bytes::from(vec![0x00, 0xff, 0x7f, b'a']);
        let content = serde::Serialize::to_content(&b);
        let back: Bytes = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(back, b);
    }
}
