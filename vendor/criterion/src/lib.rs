//! Minimal offline replacement for `criterion`: a wall-clock
//! micro-benchmark harness with the same calling surface
//! (`criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_with_input` / `Bencher::iter`). No statistics engine — each
//! benchmark runs a short warm-up, then a fixed measurement window, and
//! prints the mean time per iteration and derived throughput.

use std::fmt;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1000);

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(name, &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput unit.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares how much work one iteration represents.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{id}", self.name), &bencher, self.throughput);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{id}", self.name), &bencher, self.throughput);
        self
    }

    /// Ends the group (no-op beyond parity with the real API).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { function: function.to_string(), parameter: parameter.to_string() }
    }

    /// Labels a benchmark by its parameter alone (group name supplies the
    /// function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Work per iteration, for derived rates.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing driver handed to each benchmark closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit the window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter) as u64).max(1);

        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }

    /// Calls `routine` on a fresh `setup()` value each iteration; only the
    /// routine is timed. The batch-size hint is ignored (batch size 1).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine(setup()));
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = ((MEASURE.as_secs_f64() / per_iter) as u64).max(1);

        let mut timed = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
        self.iters = target;
    }
}

/// How many setup values to batch per measurement (hint only here).
#[derive(Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: per-iteration setup is cheap.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let time = if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<40} {time:>12}/iter{rate}   ({} iters)", bencher.iters);
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
