//! Minimal offline replacement for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` /
//! `prop_compose!` / `prop_oneof!` / `prop_assert*!` macros, integer-range
//! and regex-subset string strategies, tuples, `prop::collection::{vec,
//! btree_map}`, `prop::option::of`, `any::<T>()`, and the `prop_map` /
//! `prop_flat_map` / `prop_recursive` combinators.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (full reproducibility, no persistence
//! files) and there is **no shrinking** — a failing case reports its
//! inputs verbatim.

use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64, same generator family as the simulator).

/// Deterministic random source handed to strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds directly.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Derives the seed for one test case from the test's path and index,
    /// so every run of the suite generates identical cases.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(h ^ case.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

// ---------------------------------------------------------------------
// Core trait and combinators.

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Grows `self` (the leaf case) into a recursive structure at most
    /// `depth` levels deep. The size/branch hints accepted by the real
    /// crate are ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Wraps a plain closure as a strategy (used by `prop_compose!`).
pub struct Composed<F>(F);

/// See [`Composed`].
pub fn composed<T, F: Fn(&mut TestRng) -> T>(f: F) -> Composed<F> {
    Composed(f)
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for Composed<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: integer ranges and regex-subset strings.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String literals act as regex-subset patterns, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex::generate(self, rng)
    }
}

mod regex {
    //! Generator for the regex subset used as string strategies:
    //! literal characters, `.`, `[...]` classes with ranges, and the
    //! `{n}` / `{n,m}` / `?` / `*` / `+` quantifiers.

    use super::TestRng;

    enum Piece {
        Literal(char),
        Class(Vec<(char, char)>),
        Any,
    }

    /// Characters `.` draws from beyond printable ASCII, to exercise
    /// multi-byte handling in never-panic tests.
    const EXOTIC: &[char] = &['\n', '\t', '\u{0}', 'é', 'Ω', '中', '😀'];

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (piece, min, max) in parse(pattern) {
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &piece {
                    Piece::Literal(c) => out.push(*c),
                    Piece::Any => {
                        if rng.below(20) == 0 {
                            out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                        } else {
                            out.push((0x20 + rng.below(0x5f) as u8) as char);
                        }
                    }
                    Piece::Class(ranges) => {
                        let total: u64 =
                            ranges.iter().map(|(lo, hi)| *hi as u64 - *lo as u64 + 1).sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let size = *hi as u64 - *lo as u64 + 1;
                            if pick < size {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<(Piece, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let mut pieces = Vec::new();
        while pos < chars.len() {
            let piece = match chars[pos] {
                '[' => {
                    pos += 1;
                    let mut ranges = Vec::new();
                    while pos < chars.len() && chars[pos] != ']' {
                        let lo = if chars[pos] == '\\' {
                            pos += 1;
                            chars[pos]
                        } else {
                            chars[pos]
                        };
                        pos += 1;
                        if pos + 1 < chars.len() && chars[pos] == '-' && chars[pos + 1] != ']' {
                            let hi = chars[pos + 1];
                            assert!(lo <= hi, "bad class range in pattern `{pattern}`");
                            ranges.push((lo, hi));
                            pos += 2;
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(pos < chars.len(), "unclosed class in pattern `{pattern}`");
                    pos += 1; // ']'
                    Piece::Class(ranges)
                }
                '.' => {
                    pos += 1;
                    Piece::Any
                }
                '\\' => {
                    pos += 1;
                    let c = chars[pos];
                    pos += 1;
                    Piece::Literal(c)
                }
                c => {
                    pos += 1;
                    Piece::Literal(c)
                }
            };
            let (min, max) = match chars.get(pos) {
                Some('{') => {
                    let close =
                        chars[pos..].iter().position(|&c| c == '}').expect("unclosed quantifier")
                            + pos;
                    let body: String = chars[pos + 1..close].iter().collect();
                    pos = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    pos += 1;
                    (0, 1)
                }
                Some('*') => {
                    pos += 1;
                    (0, 8)
                }
                Some('+') => {
                    pos += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "bad quantifier in pattern `{pattern}`");
            pieces.push((piece, min, max));
        }
        pieces
    }
}

// ---------------------------------------------------------------------
// Tuples.

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------
// `any::<T>()`.

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// Collections and Option.

pub mod collection {
    //! Strategies for variable-size collections.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// A map of up to `size` entries (duplicate keys collapse, as in the
    /// real crate).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| (self.keys.generate(rng), self.values.generate(rng))).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option<T>`.

    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S>(S);

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner plumbing.

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed `prop_assert*!` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[doc(hidden)]
pub fn __case_desc(args: &[(&str, String)]) -> String {
    args.iter().map(|(name, value)| format!("  {name} = {value}")).collect::<Vec<_>>().join("\n")
}

// ---------------------------------------------------------------------
// Macros.

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let desc = $crate::__case_desc(&[
                        $((stringify!($arg), format!("{:?}", $arg))),*
                    ]);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case #{case} failed: {e}\nwith inputs:\n{desc}");
                    }
                }
            }
        )*
    };
}

/// Declares a named strategy-returning function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($outer:tt)*)
     ( $($arg:ident in $strat:expr),* $(,)? ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::composed(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Mirror of the real crate's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let gen1: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 0);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let gen2: Vec<u64> = {
            let mut rng = TestRng::for_case("t", 0);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(gen1, gen2);
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let s = Strategy::generate(&"[A-Z]{2,8}-[0-9]{1,4}", &mut rng);
            let (alpha, digits) = s.split_once('-').unwrap();
            assert!((2..=8).contains(&alpha.len()));
            assert!(alpha.chars().all(|c| c.is_ascii_uppercase()));
            assert!((1..=4).contains(&digits.len()));
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
        for _ in 0..50 {
            let s = Strategy::generate(&"[A-Za-z0-9 .,;:+/_-]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(1u8..=12), &mut rng);
            assert!((1..=12).contains(&u));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
