//! Minimal offline replacement for the `serde` facade.
//!
//! Instead of serde's visitor-based zero-copy data model, values serialize
//! into an owned JSON-like [`Content`] tree and deserialize back out of
//! one. `serde_json` (also vendored) renders `Content` to JSON text and
//! parses it back. This supports exactly what the workspace needs —
//! `#[derive(Serialize, Deserialize)]` on attribute-free structs and
//! enums, plus `serde_json::to_string`/`from_str` round trips — and
//! nothing else.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so u64 > i64::MAX round-trips).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value pairs; keys need not be strings.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Variant name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Null => "null",
            Self::Bool(_) => "bool",
            Self::Int(_) => "int",
            Self::UInt(_) => "uint",
            Self::Float(_) => "float",
            Self::Str(_) => "string",
            Self::Seq(_) => "sequence",
            Self::Map(_) => "map",
        }
    }

    /// The pairs of a map.
    pub fn as_map(&self, expected: &str) -> Result<&[(Content, Content)], Error> {
        match self {
            Self::Map(pairs) => Ok(pairs),
            other => Err(Error::custom(format!("{expected} expects a map, got {}", other.kind()))),
        }
    }

    /// The elements of a sequence.
    pub fn as_seq(&self, expected: &str) -> Result<&[Content], Error> {
        match self {
            Self::Seq(items) => Ok(items),
            other => {
                Err(Error::custom(format!("{expected} expects a sequence, got {}", other.kind())))
            }
        }
    }
}

/// Deserialization (or serialization) failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Wraps a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_content(&self) -> Content;
}

/// Deserialization out of a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the value tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Helpers used by the derive-generated code.

/// Looks up a struct field by name in a map.
pub fn field<'c>(content: &'c Content, name: &str, ty: &str) -> Result<&'c Content, Error> {
    let pairs = content.as_map(ty)?;
    pairs
        .iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("{ty} is missing field `{name}`")))
}

/// Splits an externally tagged enum value into `(variant, body)`.
/// A bare string is a unit variant; a single-pair map carries a body.
pub fn enum_parts<'c>(
    content: &'c Content,
    ty: &str,
) -> Result<(&'c str, Option<&'c Content>), Error> {
    match content {
        Content::Str(tag) => Ok((tag, None)),
        Content::Map(pairs) if pairs.len() == 1 => match &pairs[0] {
            (Content::Str(tag), body) => Ok((tag, Some(body))),
            _ => Err(Error::custom(format!("{ty} enum tag must be a string"))),
        },
        other => Err(Error::custom(format!(
            "{ty} expects a variant string or single-entry map, got {}",
            other.kind()
        ))),
    }
}

/// Checks a fixed-arity sequence (tuple structs / tuple variants).
pub fn tuple_seq<'c>(content: &'c Content, len: usize, ty: &str) -> Result<&'c [Content], Error> {
    let items = content.as_seq(ty)?;
    if items.len() != len {
        return Err(Error::custom(format!("{ty} expects {len} elements, got {}", items.len())));
    }
    Ok(items)
}

// ---------------------------------------------------------------------
// Primitive implementations.

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide: i64 = match content {
                    Content::Int(v) => *v,
                    Content::UInt(v) if *v <= i64::MAX as u64 => *v as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let wide: u64 = match content {
                    Content::UInt(v) => *v,
                    Content::Int(v) if *v >= 0 => *v as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Float(v) => Ok(*v),
            Content::Int(v) => Ok(*v as f64),
            Content::UInt(v) => Ok(*v as f64),
            other => Err(Error::custom(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Cow<'_, str> {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for Cow<'static, str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(Cow::Owned)
    }
}

// ---------------------------------------------------------------------
// Container implementations.

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_seq("Vec")?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_content(), v.to_content())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(pairs) => {
                pairs.iter().map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?))).collect()
            }
            // Maps with non-string keys render to JSON as arrays of pairs
            // and parse back as sequences.
            Content::Seq(items) => items
                .iter()
                .map(|item| {
                    let pair = tuple_seq(item, 2, "map entry")?;
                    Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
                })
                .collect(),
            other => Err(Error::custom(format!("expected map, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_seq("BTreeSet")?.iter().map(T::from_content).collect()
    }
}

macro_rules! tuple_impl {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let items = tuple_seq(content, $len, "tuple")?;
                Ok(($($t::from_content(&items[$idx])?,)+))
            }
        }
    };
}

tuple_impl!(1 => A.0);
tuple_impl!(2 => A.0, B.1);
tuple_impl!(3 => A.0, B.1, C.2);
tuple_impl!(4 => A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            u8::from_content(&Content::Int(300)),
            Err(Error::custom("300 out of range for u8"))
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let m: BTreeMap<String, i64> = [("a".to_string(), 1i64)].into_iter().collect();
        assert_eq!(BTreeMap::<String, i64>::from_content(&m.to_content()).unwrap(), m);
        let o: Option<u32> = Some(5);
        assert_eq!(Option::<u32>::from_content(&o.to_content()).unwrap(), o);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        let t = (1u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn maps_with_nonstring_keys_roundtrip_via_seq() {
        let m: BTreeMap<u64, String> = [(1u64, "one".to_string())].into_iter().collect();
        let as_seq = Content::Seq(vec![Content::Seq(vec![
            Content::UInt(1),
            Content::Str("one".to_string()),
        ])]);
        assert_eq!(BTreeMap::<u64, String>::from_content(&as_seq).unwrap(), m);
    }
}
