//! Minimal offline replacement for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! attribute-free, non-generic structs and enums used in this workspace.
//! The input is parsed directly from the token stream (no syn/quote) —
//! only the shape (field names / arities) matters, since the generated
//! code defers all typing to trait method calls.
//!
//! Encoding (must stay in sync with the vendored `::serde::Content` docs):
//! - named struct        -> `Map[(Str(field), value), ...]`
//! - newtype struct      -> inner value, transparently
//! - tuple struct (n>1)  -> `Seq[values...]`
//! - unit struct         -> `Null`
//! - unit variant        -> `Str(name)`
//! - newtype variant     -> `Map[(Str(name), inner)]`
//! - tuple variant       -> `Map[(Str(name), Seq[values...])]`
//! - struct variant      -> `Map[(Str(name), Map[(Str(field), value), ...])]`

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of the deriving type, with only what code generation needs.
enum Data {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, VariantKind)>),
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let (name, data) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => return format!("compile_error!({msg:?});").parse().unwrap(),
    };
    let body = if serialize { gen_serialize(&name, &data) } else { gen_deserialize(&name, &data) };
    body.parse().unwrap()
}

// ---------------------------------------------------------------------
// Parsing

fn parse(input: TokenStream) -> Result<(String, Data), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("derive expects a struct or enum".to_string()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("derive expects a type name".to_string()),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("vendored serde_derive does not support generics (type `{name}`)"));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Data::Named(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Data::Tuple(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Data::Unit)),
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Data::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("enum `{name}` has no body")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // '#' and the bracketed group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Type, ... }` body. Types are skipped by
/// scanning to the next comma outside angle brackets (parens/brackets
/// arrive pre-grouped, so only `<`/`>` need explicit depth tracking).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        match &tokens[pos] {
            TokenTree::Ident(i) => fields.push(i.to_string()),
            other => return Err(format!("expected field name, found `{other}`")),
        }
        pos += 1;
        if !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{}`", fields.last().unwrap()));
        }
        pos += 1;
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        pos += 1; // the comma (or one past the end)
    }
    Ok(fields)
}

/// Field count of a `(TypeA, TypeB, ...)` body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantKind)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!("variant `{name}`: explicit discriminants are unsupported"));
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push((name, kind));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation

fn str_content(text: &str) -> String {
    format!("::serde::Content::Str({text:?}.to_string())")
}

fn gen_serialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::to_content(&self.{f}))", str_content(f)))
                .collect();
            format!("::serde::Content::Map(vec![{}])", pairs.join(", "))
        }
        Data::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Data::Unit => "::serde::Content::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| {
                    let tag = str_content(v);
                    match kind {
                        VariantKind::Unit => format!("Self::{v} => {tag},"),
                        VariantKind::Tuple(1) => format!(
                            "Self::{v}(f0) => ::serde::Content::Map(vec![({tag}, \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "Self::{v}({}) => ::serde::Content::Map(vec![({tag}, \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::to_content({f}))",
                                        str_content(f)
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{v} {{ {} }} => ::serde::Content::Map(vec![({tag}, \
                                 ::serde::Content::Map(vec![{}]))]),",
                                fields.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::field(content, {f:?}, {name:?})?)?"
                    )
                })
                .collect();
            format!("Ok(Self {{ {} }})", inits.join(", "))
        }
        Data::Tuple(1) => "Ok(Self(::serde::Deserialize::from_content(content)?))".to_string(),
        Data::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::tuple_seq(content, {n}, {name:?})?;\n\
                 Ok(Self({}))",
                items.join(", ")
            )
        }
        Data::Unit => "Ok(Self)".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, kind)| {
                    let ty = format!("{name}::{v}");
                    let need_body = format!(
                        "body.ok_or_else(|| ::serde::Error::custom(\
                         \"variant `{ty}` expects a body\"))?"
                    );
                    match kind {
                        VariantKind::Unit => format!("{v:?} => Ok(Self::{v}),"),
                        VariantKind::Tuple(1) => format!(
                            "{v:?} => {{ let body = {need_body}; \
                             Ok(Self::{v}(::serde::Deserialize::from_content(body)?)) }}"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{v:?} => {{ let body = {need_body}; \
                                 let items = ::serde::tuple_seq(body, {n}, {ty:?})?; \
                                 Ok(Self::{v}({})) }}",
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::field(body, {f:?}, {ty:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{v:?} => {{ let body = {need_body}; \
                                 Ok(Self::{v} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (tag, body) = ::serde::enum_parts(content, {name:?})?;\n\
                 let _ = &body;\n\
                 match tag {{ {} other => Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))), }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let _ = content;\n\
         {body}\n\
         }}\n\
         }}"
    )
}
