//! Minimal offline replacement for `serde_json`: renders the vendored
//! serde [`Content`] tree to JSON text and parses it back. Only
//! [`to_string`] / [`from_str`] are provided.
//!
//! Maps whose keys are all strings become JSON objects; maps with
//! non-string keys (e.g. `BTreeMap<InstanceId, _>`) become arrays of
//! `[key, value]` pairs, which the vendored serde's map deserializer
//! accepts back.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Serializes a value as JSON into a reused buffer (cleared first), so
/// steady-state callers skip the per-call string allocation of
/// [`to_string`].
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    out.clear();
    write_content(&value.to_content(), out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------
// Writer

fn write_content(content: &Content, out: &mut String) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(v) => out.push_str(&v.to_string()),
        Content::UInt(v) => out.push_str(&v.to_string()),
        Content::Float(v) => {
            if !v.is_finite() {
                return Err(Error(format!("{v} is not representable in JSON")));
            }
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_content(k, out)?;
                    out.push(':');
                    write_content(v, out)?;
                }
                out.push('}');
            } else {
                // Non-string keys: array of [key, value] pairs.
                out.push('[');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    write_content(k, out)?;
                    out.push(',');
                    write_content(v, out)?;
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".to_string()))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Content::Null),
            b't' => self.literal("true", Content::Bool(true)),
            b'f' => self.literal("false", Content::Bool(false)),
            b'"' => self.string().map(Content::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!("unexpected `{}` at byte {}", other as char, self.pos))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((Content::Str(key), value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must follow.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error("lone high surrogate".to_string()));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((unit - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".to_string()))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| Error("invalid \\u escape".to_string()))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                None => return Err(Error("unterminated string".to_string())),
                Some(_) => unreachable!(),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".to_string()))
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>(" -7 ").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape() {
        let tricky = "a\"b\\c\nd\te\u{1}é😀".to_string();
        let json = to_string(&tricky).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), tricky);
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn string_keyed_maps_are_objects() {
        let m: BTreeMap<String, u32> = [("a".to_string(), 1), ("b".to_string(), 2)].into();
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"a\":1,\"b\":2}");
        assert_eq!(from_str::<BTreeMap<String, u32>>(&json).unwrap(), m);
    }

    #[test]
    fn nonstring_keyed_maps_are_pair_arrays() {
        let m: BTreeMap<u64, String> = [(3u64, "x".to_string())].into();
        let json = to_string(&m).unwrap();
        assert_eq!(json, "[[3,\"x\"]]");
        assert_eq!(from_str::<BTreeMap<u64, String>>(&json).unwrap(), m);
    }

    #[test]
    fn to_string_into_reuses_the_buffer() {
        let mut buf = String::with_capacity(64);
        to_string_into(&41u64, &mut buf).unwrap();
        let ptr = buf.as_ptr();
        to_string_into(&"hello", &mut buf).unwrap();
        assert_eq!(buf, "\"hello\"");
        assert_eq!(buf.as_ptr(), ptr, "buffer reused, not regrown");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
